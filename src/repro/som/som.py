"""Self-Organizing Map (Kohonen map) for scalable deduplication.

SOMDedup (§5.5.1) chose SOM over KNN and hierarchical clustering because
its single hyperparameter — the grid size — can be set robustly:
``L = ceil(n ** (1/4))`` for an ``L x L`` grid over ``n`` items.  Items
mapped to the same best-matching unit (BMU) form a cluster; training is
O(n) per epoch, versus the O(n^2) of pairwise clustering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SelfOrganizingMap", "som_cluster", "som_grid_size"]


def som_grid_size(n_items: int) -> int:
    """The paper's robust grid-size rule: ``L = ceil(n ** (1/4))``."""
    if n_items <= 0:
        return 1
    return max(1, math.ceil(n_items ** 0.25))


@dataclass
class SelfOrganizingMap:
    """A rectangular Kohonen map trained by the classic online rule.

    Args:
        grid_rows: Number of rows of units.
        grid_cols: Number of columns of units.
        n_epochs: Training passes over the data.
        initial_learning_rate: Starting learning rate; decays linearly.
        initial_radius: Starting neighbourhood radius (defaults to half
            the larger grid dimension); decays exponentially.
        seed: RNG seed for weight initialization and shuffling.
    """

    grid_rows: int
    grid_cols: int
    n_epochs: int = 20
    initial_learning_rate: float = 0.5
    initial_radius: Optional[float] = None
    seed: int = 0
    _weights: np.ndarray = field(init=False, repr=False, default=None)  # type: ignore[assignment]
    _coords: np.ndarray = field(init=False, repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.grid_rows <= 0 or self.grid_cols <= 0:
            raise ValueError("grid dimensions must be positive")
        rows, cols = np.meshgrid(
            np.arange(self.grid_rows), np.arange(self.grid_cols), indexing="ij"
        )
        self._coords = np.column_stack([rows.ravel(), cols.ravel()]).astype(float)

    @property
    def n_units(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def weights(self) -> np.ndarray:
        """Unit weight matrix, shape ``(n_units, n_features)``."""
        if self._weights is None:
            raise RuntimeError("SOM has not been fitted")
        return self._weights

    def fit(self, data: Sequence[Sequence[float]]) -> "SelfOrganizingMap":
        """Train the map on ``data`` (shape ``(n_items, n_features)``).

        Features are z-normalized internally so no single feature
        dominates the distance metric.
        """
        x = np.asarray(data, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("data must be a non-empty 2-D array")
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        x = (x - self._mean) / self._std

        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        # Initialize units at random data points for fast convergence.
        init_idx = rng.integers(0, n, size=self.n_units)
        self._weights = x[init_idx].copy() + rng.normal(0, 1e-3, size=(self.n_units, d))

        radius0 = self.initial_radius or max(self.grid_rows, self.grid_cols) / 2.0
        total_steps = self.n_epochs * n
        step = 0
        for _ in range(self.n_epochs):
            for i in rng.permutation(n):
                progress = step / max(1, total_steps)
                lr = self.initial_learning_rate * (1.0 - progress)
                radius = max(0.5, radius0 * np.exp(-3.0 * progress))
                bmu = self._best_matching_unit(x[i])
                grid_dist = np.linalg.norm(self._coords - self._coords[bmu], axis=1)
                influence = np.exp(-(grid_dist ** 2) / (2 * radius ** 2))
                self._weights += lr * influence[:, None] * (x[i] - self._weights)
                step += 1
        return self

    def _best_matching_unit(self, point: np.ndarray) -> int:
        return int(np.argmin(np.linalg.norm(self._weights - point, axis=1)))

    def predict(self, data: Sequence[Sequence[float]]) -> np.ndarray:
        """Map each item to its best-matching unit index."""
        if self._weights is None:
            raise RuntimeError("SOM has not been fitted")
        x = (np.asarray(data, dtype=float) - self._mean) / self._std
        return np.array([self._best_matching_unit(p) for p in x])

    def unit_coordinates(self, unit: int) -> Tuple[int, int]:
        """Grid ``(row, col)`` of a unit index."""
        return divmod(unit, self.grid_cols)


def _merge_close_units(
    weights: np.ndarray,
    used_units: Sequence[int],
    merge_factor: float,
) -> Dict[int, int]:
    """Union close units into groups; returns unit -> group-root mapping.

    Two units merge when their codebook distance is below ``merge_factor``
    times the median pairwise distance among used units — nearby units on
    a trained SOM represent the same dense region of feature space, and
    treating them as separate clusters would under-deduplicate.
    """
    units = list(used_units)
    parent = {u: u for u in units}

    def find(u: int) -> int:
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = parent[u]
        return u

    if len(units) < 2:
        return parent
    dists = [
        float(np.linalg.norm(weights[a] - weights[b]))
        for i, a in enumerate(units)
        for b in units[i + 1 :]
    ]
    threshold = merge_factor * float(np.median(dists))
    for i, a in enumerate(units):
        for b in units[i + 1 :]:
            if float(np.linalg.norm(weights[a] - weights[b])) <= threshold:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[rb] = ra
    return {u: find(u) for u in units}


def som_cluster(
    features: Sequence[Sequence[float]],
    grid_size: Optional[int] = None,
    seed: int = 0,
    merge_factor: float = 0.25,
) -> List[List[int]]:
    """Cluster items by shared (or nearby) best-matching unit.

    Items mapping to the same BMU form a cluster; units whose codebook
    vectors are much closer than typical are merged, since a trained map
    spreads a dense region across adjacent units.

    Args:
        features: ``(n_items, n_features)`` feature matrix.
        grid_size: Side of the square grid; defaults to the paper's
            ``ceil(n ** 1/4)`` rule.
        seed: Training RNG seed.
        merge_factor: Units closer than this fraction of the median
            inter-unit distance merge into one cluster; 0 disables.

    Returns:
        A list of clusters, each a list of item indices, ordered by the
        smallest index they contain.  Every item appears exactly once.
    """
    x = np.asarray(features, dtype=float)
    n = x.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [[0]]
    size = grid_size or som_grid_size(n)
    som = SelfOrganizingMap(grid_rows=size, grid_cols=size, seed=seed).fit(x)
    assignments = som.predict(x)

    used = sorted(set(int(u) for u in assignments))
    if merge_factor > 0:
        roots = _merge_close_units(som.weights, used, merge_factor)
    else:
        roots = {u: u for u in used}

    by_group: Dict[int, List[int]] = {}
    for item, unit in enumerate(assignments):
        by_group.setdefault(roots[int(unit)], []).append(item)
    return sorted(by_group.values(), key=lambda members: members[0])
