"""Self-Organizing Map clustering (SOMDedup's engine, §5.5.1)."""

from repro.som.som import SelfOrganizingMap, som_cluster, som_grid_size

__all__ = ["SelfOrganizingMap", "som_cluster", "som_grid_size"]
