"""Canned scenario generators reproducing the paper's simulations.

These mirror §2's feasibility simulations and the challenge cases of
Figure 1 and Figure 7:

- :func:`single_server_cpu` — Figure 1(a): one server, N(0.5, 0.01),
  +0.005% mid-series, clipped to [0, 1].
- :func:`process_level_average` — Figure 2: the average of *m* servers of
  two generations (N(0.40, 0.01) gaining +0.003% and N(0.60, 0.02)
  gaining +0.007% mid-series).
- :func:`subroutine_level_average` — Figure 3: the Figure 2 population's
  CPU spread over k=1000 subroutines, averaged over m servers.
- :func:`cost_shift_series` — Figure 1(b): a subroutine whose gCPU rises
  purely because a refactor moved code into it.
- :func:`transient_throughput_drop` — Figure 1(c): a throughput dip that
  recovers on its own.
- :func:`spike_then_regression` — Figure 7: a temporary spike mid-series
  and a true regression at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "single_server_cpu",
    "process_level_average",
    "subroutine_level_average",
    "cost_shift_series",
    "transient_throughput_drop",
    "spike_then_regression",
    "noisy_step_series",
]


def single_server_cpu(
    n_points: int = 500,
    mean: float = 0.5,
    variance: float = 0.01,
    regression: float = 0.00005,
    seed: int = 0,
) -> np.ndarray:
    """Figure 1(a): one server's CPU usage with a tiny mid-series shift.

    Args:
        n_points: Series length; the shift lands at the midpoint.
        mean: Pre-change mean CPU fraction (paper: 0.5).
        variance: Per-sample variance (paper: 0.01).
        regression: Absolute mean increase (paper: 0.00005 = 0.005%).
        seed: RNG seed.

    Returns:
        The series, clipped to [0, 1].
    """
    rng = np.random.default_rng(seed)
    std = np.sqrt(variance)
    half = n_points // 2
    before = rng.normal(mean, std, half)
    after = rng.normal(mean + regression, std, n_points - half)
    return np.clip(np.concatenate([before, after]), 0.0, 1.0)


def process_level_average(
    m_servers: int,
    n_points: int = 500,
    seed: int = 0,
) -> np.ndarray:
    """Figure 2: average CPU of ``m_servers`` across two generations.

    Half the servers are N(0.40, 0.01) regressing by +0.003% mid-series;
    the other half N(0.60, 0.02) regressing by +0.007% — the same code
    change performing differently across generations.

    Rather than materializing ``m`` series, the average of ``m`` IID
    normals is drawn directly from its exact sampling distribution
    ``N(mu, sigma^2 / m)`` — the Law of Large Numbers shortcut the
    figure itself illustrates.  Clipping is negligible at these means.
    """
    rng = np.random.default_rng(seed)
    half_m = m_servers / 2.0
    half_n = n_points // 2

    def segment(mu_a: float, mu_b: float, length: int) -> np.ndarray:
        # Mean of the two-generation mixture; variance of the average of
        # m/2 draws at 0.01 plus m/2 draws at 0.02.
        mixture_mean = (mu_a + mu_b) / 2.0
        variance = (0.01 + 0.02) / 2.0 / m_servers
        return rng.normal(mixture_mean, np.sqrt(variance), length)

    before = segment(0.40, 0.60, half_n)
    after = segment(0.40 + 0.00003, 0.60 + 0.00007, n_points - half_n)
    return np.concatenate([before, after])


def _censored_normal_moments(mu: float, sigma: float) -> Tuple[float, float]:
    """Mean and variance of ``max(N(mu, sigma^2), 0)`` (censored at zero)."""
    from scipy import stats as sp_stats

    alpha = mu / sigma
    phi = float(sp_stats.norm.pdf(alpha))
    cdf = float(sp_stats.norm.cdf(alpha))
    mean = mu * cdf + sigma * phi
    second_moment = (mu ** 2 + sigma ** 2) * cdf + mu * sigma * phi
    return mean, max(second_moment - mean ** 2, 0.0)


def subroutine_level_average(
    m_servers: int,
    k_subroutines: int = 1000,
    n_points: int = 500,
    seed: int = 0,
) -> np.ndarray:
    """Figure 3: one subroutine's gCPU-scale CPU averaged over ``m_servers``.

    The process-level CPU of Figure 2 is distributed across ``k``
    subroutines, so the per-subroutine mean shrinks by ``k`` and the
    variance by ``k`` (Expression 2); the regression under study lands in
    *this* subroutine, so its full magnitude (0.003%/0.007% by server
    generation) appears here.  Per-server samples are censored at zero,
    which (per the paper's footnote 2) raises the sample mean above
    ``mu / k`` — visible in Figure 3's ~0.17% level versus the naive
    0.05%.

    As in :func:`process_level_average`, the average over ``m`` servers
    is drawn from its exact CLT distribution using censored-normal
    moments, so hyperscale fleets simulate in microseconds.
    """
    rng = np.random.default_rng(seed)
    half_n = n_points // 2
    k = k_subroutines

    def segment(regression: Tuple[float, float], length: int) -> np.ndarray:
        # Two generations: (mu, sigma^2) of (0.40, 0.01) and (0.60, 0.02)
        # at the process level, scaled to one of k subroutines; the
        # regression adds to this subroutine's mean in full.
        mean_a, var_a = _censored_normal_moments(
            0.40 / k + regression[0], np.sqrt(0.01 / k)
        )
        mean_b, var_b = _censored_normal_moments(
            0.60 / k + regression[1], np.sqrt(0.02 / k)
        )
        mixture_mean = (mean_a + mean_b) / 2.0
        mixture_var = (var_a + var_b) / 2.0 / m_servers
        return rng.normal(mixture_mean, np.sqrt(mixture_var), length)

    before = segment((0.0, 0.0), half_n)
    after = segment((0.00003, 0.00007), n_points - half_n)
    return np.concatenate([before, after])


def cost_shift_series(
    n_points: int = 500,
    target_gcpu: float = 0.0001,
    shifted_gcpu: float = 0.0003,
    noise_std: float = 0.00002,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Figure 1(b): a refactor moves cost into the target subroutine.

    Returns:
        ``(target_series, domain_series)`` — the target subroutine's gCPU
        (which jumps from ``target_gcpu`` to ``target_gcpu +
        shifted_gcpu``) and the enclosing cost domain's gCPU (which stays
        flat, revealing the false positive).
    """
    rng = np.random.default_rng(seed)
    half = n_points // 2
    target = np.concatenate(
        [
            rng.normal(target_gcpu, noise_std, half),
            rng.normal(target_gcpu + shifted_gcpu, noise_std, n_points - half),
        ]
    )
    domain_level = target_gcpu + shifted_gcpu + 0.0004
    domain = rng.normal(domain_level, noise_std * 2, n_points)
    return np.clip(target, 0.0, 1.0), np.clip(domain, 0.0, 1.0)


def transient_throughput_drop(
    n_points: int = 500,
    base: float = 120.0,
    drop_fraction: float = 0.5,
    drop_start: Optional[int] = None,
    drop_length: int = 40,
    noise_std: float = 4.0,
    seed: int = 0,
) -> np.ndarray:
    """Figure 1(c): throughput dips for a while, then fully recovers."""
    rng = np.random.default_rng(seed)
    series = rng.normal(base, noise_std, n_points)
    start = drop_start if drop_start is not None else int(0.55 * n_points)
    end = min(n_points, start + drop_length)
    series[start:end] *= 1.0 - drop_fraction
    return np.maximum(series, 0.0)


def spike_then_regression(
    n_points: int = 500,
    base: float = 0.001,
    spike_magnitude: float = 0.0008,
    regression_magnitude: float = 0.0004,
    noise_std: float = 0.00004,
    seed: int = 0,
) -> np.ndarray:
    """Figure 7: a transient spike mid-series, a true regression at the end.

    The went-away detector must not let the spike mask the regression:
    the spike and the end regression have different post-change patterns,
    so they are "caused by different reasons".
    """
    rng = np.random.default_rng(seed)
    series = rng.normal(base, noise_std, n_points)
    spike_start = int(0.45 * n_points)
    spike_end = spike_start + max(4, n_points // 25)
    series[spike_start:spike_end] += spike_magnitude
    regression_start = int(0.85 * n_points)
    series[regression_start:] += regression_magnitude
    return np.maximum(series, 0.0)


def noisy_step_series(
    n_points: int,
    change_index: int,
    base: float,
    shift: float,
    noise_std: float,
    seed: int = 0,
) -> np.ndarray:
    """A generic step series: N(base, noise) then N(base+shift, noise)."""
    rng = np.random.default_rng(seed)
    series = rng.normal(base, noise_std, n_points)
    series[change_index:] += shift
    return series
