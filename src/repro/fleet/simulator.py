"""The fleet simulation engine.

Advances simulated time in collection intervals.  At each tick it:

1. applies any code/configuration changes whose deploy time has arrived
   (scaling subroutine costs, performing refactor cost shifts);
2. computes the call graph's subroutine inclusion probabilities and emits
   one gCPU point per non-trivial subroutine, drawn from the exact
   binomial sampling distribution for the configured effective fleet-wide
   sample count;
3. draws a batch of explicit stack traces for structure analyses and
   ingests them through the :class:`FleetProfileCollector`;
4. emits service-level metrics (CPU, throughput, latency, error rate)
   with server-generation mixing, seasonality, and any active transient
   events applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fleet.changes import ChangeLog, CodeChange
from repro.fleet.events import TransientEvent
from repro.fleet.service import ServiceSpec
from repro.profiling.collector import FleetProfileCollector
from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["FleetSimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Artifacts of a simulation run.

    Attributes:
        database: TSDB holding every emitted series.
        collector: Profile collector (exposes raw sample history).
        change_log: The change log the run consumed.
        ticks: Number of collection intervals simulated.
        end_time: Simulation time after the final tick.
    """

    database: TimeSeriesDatabase
    collector: FleetProfileCollector
    change_log: ChangeLog
    ticks: int
    end_time: float


class FleetSimulator:
    """Simulates one service's fleet over time.

    Args:
        spec: Service specification.
        change_log: Changes to apply as time passes.
        events: Transient events to overlay on service metrics.
        interval: Collection interval in seconds (one tick).
        seed: RNG seed — runs are fully reproducible.
        database: Optional existing TSDB to write into.

    Example::

        sim = FleetSimulator(spec, change_log=log, interval=60.0, seed=7)
        result = sim.run(n_ticks=2000)
        series = result.database.query(metric="gcpu", subroutine="svc::C::m")
    """

    def __init__(
        self,
        spec: ServiceSpec,
        change_log: Optional[ChangeLog] = None,
        events: Optional[Sequence[TransientEvent]] = None,
        interval: float = 60.0,
        seed: int = 0,
        database: Optional[TimeSeriesDatabase] = None,
        start_time: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.spec = spec
        self.change_log = change_log if change_log is not None else ChangeLog()
        self.events = list(events or [])
        self.interval = interval
        self.rng = np.random.default_rng(seed)
        # Explicit None check: an empty TimeSeriesDatabase is falsy.
        self.database = database if database is not None else TimeSeriesDatabase()
        self.collector = FleetProfileCollector(self.database, service=spec.name)
        self.time = start_time
        self.servers = spec.build_servers()
        self._applied_changes: set = set()
        self._ticks = 0

    # ------------------------------------------------------------------
    # Change application
    # ------------------------------------------------------------------

    def _apply_due_changes(self) -> List[CodeChange]:
        """Apply changes whose deploy time has arrived; returns them."""
        due = [
            c
            for c in self.change_log.all_between(-np.inf, self.time + self.interval)
            if c.change_id not in self._applied_changes
        ]
        graph = self.spec.call_graph
        for change in due:
            for effect in change.effects:
                if effect.subroutine in graph:
                    graph.scale_cost(effect.subroutine, effect.factor)
            for shift in change.cost_shifts:
                if shift.source in graph and shift.target not in graph:
                    # Refactors may introduce the target subroutine.
                    source_spec = graph.get(shift.source)
                    from repro.fleet.subroutine import SubroutineSpec

                    graph.add(
                        SubroutineSpec(
                            name=shift.target,
                            self_cost=0.0,
                            parent=source_spec.parent,
                            endpoint=source_spec.endpoint,
                        )
                    )
                if shift.source in graph and shift.target in graph:
                    graph.move_cost(shift.source, shift.target, shift.fraction)
            self._applied_changes.add(change.change_id)
        return due

    # ------------------------------------------------------------------
    # Metric emission
    # ------------------------------------------------------------------

    def _event_multiplier(self, metric: str) -> float:
        multiplier = 1.0
        for event in self.events:
            multiplier *= event.multiplier(metric, self.time)
        return multiplier

    def _emit_gcpu(self) -> None:
        """Write per-subroutine gCPU points with exact binomial noise."""
        probabilities = self.spec.call_graph.inclusion_probabilities()
        n = self.spec.effective_samples
        for subroutine, p in probabilities.items():
            if subroutine == self.spec.call_graph.root:
                continue
            if p < self.collector.min_gcpu:
                continue
            observed = self.rng.binomial(n, min(1.0, p)) / n
            self.database.write(
                f"{self.spec.name}.{subroutine}.gcpu",
                self.time,
                observed,
                tags={
                    "service": self.spec.name,
                    "subroutine": subroutine,
                    "metric": "gcpu",
                },
            )

    def _emit_endpoint_gcpu(self) -> None:
        """Aggregate subtree costs per endpoint (endpoint-level detection)."""
        graph = self.spec.call_graph
        probabilities = graph.inclusion_probabilities()
        per_endpoint: Dict[str, float] = {}
        for name in graph.names():
            spec = graph.get(name)
            if spec.endpoint is not None:
                per_endpoint[spec.endpoint] = per_endpoint.get(spec.endpoint, 0.0) + (
                    probabilities.get(name, 0.0)
                )
        n = self.spec.effective_samples
        for endpoint, p in per_endpoint.items():
            observed = self.rng.binomial(n, min(1.0, p)) / n
            suffix = endpoint.replace("/", ".")
            tags = {"service": self.spec.name, "endpoint": endpoint}
            self.database.write(
                f"{self.spec.name}.endpoint{suffix}.gcpu",
                self.time,
                observed,
                tags={**tags, "metric": "endpoint_gcpu"},
            )
            # Per-RPC-endpoint latency and error rate (§2: FBDetect also
            # supports "latency, throughput, and error rate per RPC
            # endpoint").  Latency tracks the endpoint's cost share —
            # heavier endpoints respond slower — plus event effects.
            latency = self.spec.base_latency_ms * (0.5 + 5.0 * observed)
            latency *= 1.0 + abs(self.rng.normal(0.0, 0.03))
            latency *= self._event_multiplier("latency")
            self.database.write(
                f"{self.spec.name}.endpoint{suffix}.latency_ms",
                self.time,
                latency,
                tags={**tags, "metric": "endpoint_latency"},
            )
            errors = self.spec.base_error_rate * self._event_multiplier("error_rate")
            errors *= 1.0 + abs(self.rng.normal(0.0, 0.1))
            self.database.write(
                f"{self.spec.name}.endpoint{suffix}.error_rate",
                self.time,
                errors,
                tags={**tags, "metric": "endpoint_error_rate"},
            )

    def _emit_service_metrics(self) -> None:
        """Service-level CPU / throughput / latency / error-rate points."""
        spec = self.spec
        season = spec.seasonal_multiplier(self.time)
        healthy = [s for s in self.servers if s.healthy]
        if not healthy:
            return

        # CPU: average across servers of generation-specific normals.
        # Sampling one normal per generation bucket scaled by bucket size
        # is equivalent to averaging per-server draws.
        total_cost_factor = self._current_cost_factor()
        cpu_values = []
        for server in healthy:
            gen = server.generation
            mean = gen.cpu_mean * total_cost_factor * season
            cpu_values.append(mean)
        base_cpu = float(np.mean(cpu_values))
        cpu_noise_std = float(
            np.sqrt(np.mean([s.generation.cpu_variance for s in healthy]) / len(healthy))
        )
        cpu = base_cpu + self.rng.normal(0.0, cpu_noise_std)
        cpu *= self._event_multiplier("cpu")
        cpu = float(np.clip(cpu, 0.0, 1.0))

        throughput = spec.base_throughput * len(healthy) * season
        throughput *= 1.0 + self.rng.normal(0.0, spec.throughput_noise)
        throughput *= self._event_multiplier("throughput")
        throughput = max(0.0, throughput)

        latency = spec.base_latency_ms * (1.0 + 0.5 * max(0.0, cpu - 0.7))
        latency *= 1.0 + abs(self.rng.normal(0.0, 0.05))
        latency *= self._event_multiplier("latency")

        error_rate = spec.base_error_rate * self._event_multiplier("error_rate")
        error_rate *= 1.0 + abs(self.rng.normal(0.0, 0.1))

        # Coredump count (§3 lists it among monitored metrics): rare
        # Poisson events whose rate scales with the error rate — crashes
        # cluster around the same production problems errors do.
        coredump_rate = len(healthy) * error_rate * 0.5
        coredumps = float(self.rng.poisson(max(coredump_rate, 0.0)))

        tags = {"service": spec.name}
        self.database.write(f"{spec.name}.cpu", self.time, cpu, {**tags, "metric": "cpu"})
        self.database.write(
            f"{spec.name}.throughput", self.time, throughput, {**tags, "metric": "throughput"}
        )
        self.database.write(
            f"{spec.name}.latency_ms", self.time, latency, {**tags, "metric": "latency"}
        )
        self.database.write(
            f"{spec.name}.error_rate", self.time, error_rate, {**tags, "metric": "error_rate"}
        )
        self.database.write(
            f"{spec.name}.coredumps", self.time, coredumps, {**tags, "metric": "coredumps"}
        )

    def _current_cost_factor(self) -> float:
        """Total call-graph cost relative to its initial value."""
        if not hasattr(self, "_initial_total_cost"):
            self._initial_total_cost = self.spec.call_graph.total_cost() or 1.0
        current = self.spec.call_graph.total_cost()
        return current / self._initial_total_cost

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance one collection interval."""
        self._apply_due_changes()
        self._emit_gcpu()
        self._emit_endpoint_gcpu()
        self._emit_service_metrics()
        if self.spec.samples_per_interval > 0:
            samples = self.spec.call_graph.sample_traces(
                self.spec.samples_per_interval, self.rng
            )
            self.collector.sample_history.extend(samples)
        self.time += self.interval
        self._ticks += 1

    def run(self, n_ticks: int) -> SimulationResult:
        """Run ``n_ticks`` collection intervals and return the artifacts."""
        # Prime the cost baseline before any change applies.
        self._current_cost_factor()
        for _ in range(n_ticks):
            self.tick()
        return SimulationResult(
            database=self.database,
            collector=self.collector,
            change_log=self.change_log,
            ticks=self._ticks,
            end_time=self.time,
        )
