"""Code and configuration changes.

The root cause of every true regression is a code or configuration change
(§5.6).  A :class:`CodeChange` carries the metadata FBDetect's root-cause
analysis consumes — title, summary, touched subroutines, deploy time —
plus the *effects* the simulator applies to the call graph when the
change deploys: cost scaling (a real regression/improvement) and cost
shifts (refactors that move cost between subroutines without changing the
total, the Figure 1(b) false-positive source).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ChangeEffect", "CostShift", "CodeChange", "ChangeLog"]


@dataclass(frozen=True)
class ChangeEffect:
    """Scale one subroutine's self cost by ``factor`` (> 1 regresses)."""

    subroutine: str
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError("factor must be >= 0")


@dataclass(frozen=True)
class CostShift:
    """Move ``fraction`` of ``source``'s self cost into ``target``.

    Models refactoring: total cost is conserved, so any regression that
    appears in ``target`` alone is a false positive.
    """

    source: str
    target: str
    fraction: float

    def __post_init__(self) -> None:
        if not 0 <= self.fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")


@dataclass(frozen=True)
class CodeChange:
    """A deployed code or configuration change.

    Attributes:
        change_id: Unique id (commit hash analogue).
        deploy_time: Simulation time (seconds) the change lands fleet-wide.
        title: One-line description.
        summary: Longer description (root-cause text analysis input).
        author: Author handle.
        kind: ``"code"`` or ``"config"``.
        effects: Cost-scaling effects applied at deploy time.
        cost_shifts: Refactoring cost moves applied at deploy time.
        exported: Whether the change is visible to FBDetect.  §6.3 found
            11/61 un-root-caused regressions were caused by changes not
            exported to FBDetect; un-exported changes are invisible to
            root-cause analysis but still hit the fleet.
    """

    change_id: str
    deploy_time: float
    title: str = ""
    summary: str = ""
    author: str = ""
    kind: str = "code"
    effects: Tuple[ChangeEffect, ...] = ()
    cost_shifts: Tuple[CostShift, ...] = ()
    exported: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("code", "config"):
            raise ValueError(f"kind must be 'code' or 'config', got {self.kind!r}")
        if not isinstance(self.effects, tuple):
            object.__setattr__(self, "effects", tuple(self.effects))
        if not isinstance(self.cost_shifts, tuple):
            object.__setattr__(self, "cost_shifts", tuple(self.cost_shifts))

    @property
    def modified_subroutines(self) -> Tuple[str, ...]:
        """Every subroutine this change touches (effects + both shift ends)."""
        names: List[str] = [e.subroutine for e in self.effects]
        for shift in self.cost_shifts:
            names.extend((shift.source, shift.target))
        return tuple(dict.fromkeys(names))

    @property
    def is_regression(self) -> bool:
        """Whether any effect increases cost."""
        return any(e.factor > 1.0 for e in self.effects)


class ChangeLog:
    """Time-ordered record of changes, queryable by deploy window.

    Root-cause analysis generates candidates "by examining code or
    configuration changes deployed immediately before the regression
    occurred" (§5.6) — :meth:`deployed_between` serves that query,
    returning only *exported* changes.
    """

    def __init__(self, changes: Optional[Sequence[CodeChange]] = None) -> None:
        self._changes: List[CodeChange] = sorted(
            changes or [], key=lambda c: c.deploy_time
        )

    def __len__(self) -> int:
        return len(self._changes)

    def __iter__(self):
        return iter(self._changes)

    def add(self, change: CodeChange) -> None:
        """Insert a change keeping deploy-time order."""
        self._changes.append(change)
        self._changes.sort(key=lambda c: c.deploy_time)

    def get(self, change_id: str) -> Optional[CodeChange]:
        for change in self._changes:
            if change.change_id == change_id:
                return change
        return None

    def deployed_between(self, start: float, end: float) -> List[CodeChange]:
        """Exported changes with ``start <= deploy_time < end``."""
        return [
            c for c in self._changes if start <= c.deploy_time < end and c.exported
        ]

    def all_between(self, start: float, end: float) -> List[CodeChange]:
        """All changes in the window, exported or not (simulator use)."""
        return [c for c in self._changes if start <= c.deploy_time < end]

    def modifying(self, subroutine: str) -> List[CodeChange]:
        """Exported changes that touch ``subroutine``."""
        return [
            c
            for c in self._changes
            if c.exported and subroutine in c.modified_subroutines
        ]
