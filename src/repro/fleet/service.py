"""Service specification: call graph + fleet + workload shape."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.server import DEFAULT_GENERATIONS, Server, ServerGeneration
from repro.fleet.subroutine import CallGraph

__all__ = ["ServiceSpec"]


@dataclass
class ServiceSpec:
    """Everything the simulator needs to run one service.

    Attributes:
        name: Service name (series prefix).
        call_graph: The subroutine call graph.
        n_servers: Fleet size for this service (paper: 5 to >500k).
        generations: Hardware generation mix; servers are assigned
            round-robin across these.
        base_throughput: Mean requests/second per server.
        throughput_noise: Std-dev of per-interval throughput noise, as a
            fraction of base throughput.
        base_latency_ms: Mean request latency.
        base_error_rate: Mean error fraction.
        seasonality_period: Diurnal period in seconds (0 disables).
        seasonality_amplitude: Peak-to-mean seasonal swing as a fraction
            (applied to throughput and CPU).
        samples_per_interval: Explicit stack-trace samples generated per
            collection interval (structure analyses: cost shift, root
            cause, stack overlap).
        effective_samples: Effective fleet-wide sample count per interval
            used for the gCPU noise model.  At hyperscale the fleet takes
            millions of samples per window; generating each as an object
            is wasteful, so gCPU points are drawn from the exact binomial
            sampling distribution ``Binomial(n, p)/n`` instead — the same
            statistics at simulation cost O(#subroutines).
    """

    name: str
    call_graph: CallGraph
    n_servers: int = 100
    generations: Sequence[ServerGeneration] = DEFAULT_GENERATIONS
    base_throughput: float = 100.0
    throughput_noise: float = 0.05
    base_latency_ms: float = 20.0
    base_error_rate: float = 0.001
    seasonality_period: float = 86_400.0
    seasonality_amplitude: float = 0.0
    samples_per_interval: int = 1_000
    effective_samples: int = 1_000_000

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if not self.generations:
            raise ValueError("at least one server generation required")
        if self.effective_samples <= 0 or self.samples_per_interval < 0:
            raise ValueError("sample counts must be positive")

    def build_servers(self) -> List[Server]:
        """Instantiate the fleet, assigning generations round-robin."""
        return [
            Server(server_id=i, generation=self.generations[i % len(self.generations)])
            for i in range(self.n_servers)
        ]

    def seasonal_multiplier(self, time: float) -> float:
        """Diurnal multiplier at ``time`` (1.0 when seasonality disabled)."""
        if self.seasonality_period <= 0 or self.seasonality_amplitude == 0:
            return 1.0
        phase = 2.0 * np.pi * (time % self.seasonality_period) / self.seasonality_period
        return 1.0 + self.seasonality_amplitude * float(np.sin(phase))
