"""Dirty-data scenarios: fleet streams with real-world collection damage.

The fleet simulator emits pristine streams; production collectors do
not.  This module damages a clean sample stream the way the fleet
actually damages one — host restarts dropping samples, clock-skewed
hosts shipping out-of-order batches, collectors emitting NaN bursts,
counters wrapping on process restart — so drills can assert that the
admission layer (:mod:`repro.quality`) absorbs the damage without
changing detection outcomes.

Every transform is deterministic under its seed and is written to be
*reconstructible* by admission:

- :func:`reorder_within_blocks` permutes delivery order only; every
  point still arrives, so the TSDB contents after the reordering
  buffer's backfill merge are identical to the clean run's.
- :func:`inject_nan_bursts` adds **extra** NaN points rather than
  overwriting real ones; admission quarantines them and the TSDB never
  sees them.
- :func:`rollover_counter` rewrites a cumulative counter's tail as if
  the process restarted (raw values re-based to the restart); admission's
  reset rebasing reconstructs the exact original cumulative series when
  the counter's values are integers (float subtraction is exact there).
- :func:`drop_gaps` genuinely loses points — the one damage that cannot
  be repaired, only *suppressed* by the coverage gate — so drills apply
  it to series that are not expected to alert.

Transforms duck-type the sample: anything that is a dataclass with
``name`` / ``timestamp`` / ``value`` / ``tags`` fields works (the
streaming service's ``Sample`` is the usual one), keeping this module
free of any ``repro.service`` import.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Any, List, Optional, Sequence, Tuple

__all__ = [
    "DirtyDataSpec",
    "dirty_stream",
    "drop_gaps",
    "inject_nan_bursts",
    "reorder_within_blocks",
    "rollover_counter",
]


def reorder_within_blocks(
    samples: Sequence[Any],
    block: int = 8,
    seed: int = 0,
) -> List[Any]:
    """Shuffle delivery order inside consecutive blocks of ``block``.

    Models a clock-skewed host shipping a batch late: arrival order is
    scrambled locally but no point is lost and no point moves further
    than one block.  Per series, at most ``block`` points are ever
    pending in the admission reordering buffer, so a buffer bound of
    ``block`` or more backfills without overflow (overflow is still
    correct, just batchier).

    Args:
        samples: The clean stream, in delivery order.
        block: Block size; must be >= 1.
        seed: Shuffle seed.

    Returns:
        A new list, same points, locally permuted order.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    rng = random.Random(f"repro.fleet.dirty.reorder:{seed}")
    out: List[Any] = []
    for start in range(0, len(samples), block):
        chunk = list(samples[start:start + block])
        rng.shuffle(chunk)
        out.extend(chunk)
    return out


def inject_nan_bursts(
    samples: Sequence[Any],
    series: Sequence[str],
    bursts: int = 3,
    burst_len: int = 4,
    seed: int = 0,
) -> List[Any]:
    """Insert bursts of **extra** NaN points into the named series.

    Models a collector emitting garbage for a few intervals.  The NaN
    points duplicate the timestamps of real points but carry no
    information — admission quarantines every one (reason
    ``not_finite``), so the TSDB after the dirty run is identical to the
    clean run's.

    Args:
        samples: The clean stream.
        series: Names to damage; each gets ``bursts`` bursts.
        bursts: Bursts per damaged series.
        burst_len: Consecutive NaN points per burst.
        seed: Placement seed.

    Returns:
        A new list with the NaN extras inserted after their anchors.
    """
    rng = random.Random(f"repro.fleet.dirty.nan:{seed}")
    targets = set(series)
    # Positions of each damaged series' points in the stream.
    positions = {
        name: [i for i, s in enumerate(samples) if s.name == name]
        for name in targets
    }
    nan_after = set()
    for name, slots in positions.items():
        if not slots:
            continue
        for _ in range(bursts):
            anchor = rng.randrange(len(slots))
            for offset in range(burst_len):
                if anchor + offset < len(slots):
                    nan_after.add(slots[anchor + offset])
    out: List[Any] = []
    for index, sample in enumerate(samples):
        out.append(sample)
        if index in nan_after:
            out.append(replace(sample, value=math.nan))
    return out


def drop_gaps(
    samples: Sequence[Any],
    series: Sequence[str],
    fraction: float = 0.05,
    seed: int = 0,
) -> List[Any]:
    """Silently drop a fraction of the named series' points.

    Models host restarts losing samples.  Unlike the other transforms
    this one is lossy by construction — the coverage gate, not repair,
    is the defense — so drills should aim it at series that are not
    expected to alert.

    Args:
        samples: The clean stream.
        series: Names to damage.
        fraction: Per-point drop probability, in [0, 1].
        seed: Drop seed.

    Returns:
        A new list with the dropped points removed.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = random.Random(f"repro.fleet.dirty.gap:{seed}")
    targets = set(series)
    return [
        sample
        for sample in samples
        if sample.name not in targets or rng.random() >= fraction
    ]


def rollover_counter(
    samples: Sequence[Any],
    series: str,
    at_index: Optional[int] = None,
) -> List[Any]:
    """Restart a cumulative counter mid-stream.

    From the ``at_index``-th point of ``series`` onward (default: the
    midpoint), raw values are re-based to the last pre-restart value —
    the counter drops toward zero exactly as a restarted process's
    would.  Admission's reset detection rebases the tail by that same
    last-raw value, so for integer-valued counters the reconstructed
    cumulative series is bit-exact with the clean run's.

    Args:
        samples: The clean stream.
        series: The counter series to restart (its samples should carry
            ``tags["type"] == "counter"`` for admission to repair it).
        at_index: Which of the series' points restarts the counter
            (default midpoint); must leave at least one point before it.

    Returns:
        A new list with the tail of ``series`` re-based.
    """
    slots = [i for i, s in enumerate(samples) if s.name == series]
    if len(slots) < 2:
        return list(samples)
    cut = at_index if at_index is not None else len(slots) // 2
    if not 1 <= cut < len(slots):
        raise ValueError(
            f"at_index must be in [1, {len(slots) - 1}] for {series!r}"
        )
    base = samples[slots[cut - 1]].value  # last value the old process saw
    out = list(samples)
    for slot in slots[cut:]:
        out[slot] = replace(out[slot], value=out[slot].value - base)
    return out


@dataclass(frozen=True)
class DirtyDataSpec:
    """One dirty-data drill: which damage to apply to a clean stream.

    Attributes:
        seed: Master seed; each transform derives its own stream.
        reorder_block: Local shuffle block (0 disables reordering).
        nan_series: Series receiving NaN bursts.
        nan_bursts: Bursts per damaged series.
        nan_burst_len: Points per burst.
        gap_series: Series losing points (aim at non-alerting series).
        gap_fraction: Per-point drop probability for ``gap_series``.
        rollover_series: Cumulative counters restarted at midpoint.
    """

    seed: int = 0
    reorder_block: int = 8
    nan_series: Tuple[str, ...] = ()
    nan_bursts: int = 3
    nan_burst_len: int = 4
    gap_series: Tuple[str, ...] = ()
    gap_fraction: float = 0.05
    rollover_series: Tuple[str, ...] = ()


def dirty_stream(samples: Sequence[Any], spec: DirtyDataSpec) -> List[Any]:
    """Apply a :class:`DirtyDataSpec` to a clean stream.

    Damage lands in collector order — value damage first (rollover, NaN
    bursts, gaps), then delivery-order damage (reordering) over the
    whole result, exactly as a skewed host would ship already-damaged
    batches late.
    """
    stream: List[Any] = list(samples)
    for name in spec.rollover_series:
        stream = rollover_counter(stream, name)
    if spec.nan_series:
        stream = inject_nan_bursts(
            stream, spec.nan_series,
            bursts=spec.nan_bursts, burst_len=spec.nan_burst_len,
            seed=spec.seed,
        )
    if spec.gap_series:
        stream = drop_gaps(
            stream, spec.gap_series,
            fraction=spec.gap_fraction, seed=spec.seed,
        )
    if spec.reorder_block:
        stream = reorder_within_blocks(
            stream, block=spec.reorder_block, seed=spec.seed,
        )
    return stream
