"""Production-fleet simulator.

Stands in for Meta's fleet: services composed of subroutine call graphs
running on servers of mixed hardware generations, emitting stack-trace
samples and service-level metrics, subject to code/configuration changes
and transient production events (failures, load spikes, canaries, rolling
updates, traffic shifts).

The detection pipeline consumes only time series and stack samples, so
this simulator reproduces the statistical structure the paper describes —
per-subroutine variance decomposition (§2), transient false-positive
sources (Figure 1(c)), cost-shift refactors (Figure 1(b)), and
seasonality — without requiring a physical fleet.
"""

from repro.fleet.changes import ChangeEffect, ChangeLog, CodeChange, CostShift
from repro.fleet.dirty import (
    DirtyDataSpec,
    dirty_stream,
    drop_gaps,
    inject_nan_bursts,
    reorder_within_blocks,
    rollover_counter,
)
from repro.fleet.events import TransientEvent, TransientEventKind
from repro.fleet.server import Server, ServerGeneration
from repro.fleet.service import ServiceSpec
from repro.fleet.simulator import FleetSimulator, SimulationResult
from repro.fleet.subroutine import CallGraph, CallPath, SubroutineSpec

__all__ = [
    "CallGraph",
    "CallPath",
    "ChangeEffect",
    "ChangeLog",
    "CodeChange",
    "CostShift",
    "DirtyDataSpec",
    "FleetSimulator",
    "Server",
    "ServerGeneration",
    "ServiceSpec",
    "SimulationResult",
    "SubroutineSpec",
    "TransientEvent",
    "TransientEventKind",
    "dirty_stream",
    "drop_gaps",
    "inject_nan_bursts",
    "reorder_within_blocks",
    "rollover_counter",
]
