"""Transient production events.

The paper's Figure 1(c): "server failures, maintenance operations, load
spikes, software rolling updates, canary tests, and traffic shifts, which
can last from seconds to hours" create anomalies that *recover on their
own* and must be filtered as false positives.  Each event kind perturbs
different metrics for a bounded time window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = ["TransientEventKind", "TransientEvent"]


class TransientEventKind(str, enum.Enum):
    """The transient-issue taxonomy of §1."""

    SERVER_FAILURE = "server_failure"
    MAINTENANCE = "maintenance"
    LOAD_SPIKE = "load_spike"
    ROLLING_UPDATE = "rolling_update"
    CANARY_TEST = "canary_test"
    TRAFFIC_SHIFT = "traffic_shift"


#: Multiplicative perturbations each event kind applies while active.
#: Keys are metric kinds; values multiply the metric's clean value.
_EVENT_PROFILES: Dict[TransientEventKind, Dict[str, float]] = {
    TransientEventKind.SERVER_FAILURE: {"throughput": 0.55, "cpu": 1.10, "error_rate": 8.0},
    TransientEventKind.MAINTENANCE: {"throughput": 0.75, "cpu": 0.90},
    TransientEventKind.LOAD_SPIKE: {"throughput": 1.45, "cpu": 1.35, "latency": 1.6},
    TransientEventKind.ROLLING_UPDATE: {"throughput": 0.85, "cpu": 1.15, "error_rate": 2.0},
    TransientEventKind.CANARY_TEST: {"cpu": 1.08, "latency": 1.1},
    TransientEventKind.TRAFFIC_SHIFT: {"throughput": 0.65, "cpu": 0.80},
}


@dataclass(frozen=True)
class TransientEvent:
    """A bounded-duration production perturbation.

    Attributes:
        kind: Event taxonomy entry.
        start: Simulation time the event begins (seconds).
        duration: How long it lasts (seconds) — "from seconds to hours".
        intensity: Scales the deviation of each affected metric from 1.0;
            1.0 applies the profile as-is, 0.5 halves the perturbation.
    """

    kind: TransientEventKind
    start: float
    duration: float
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.intensity < 0:
            raise ValueError("intensity must be >= 0")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, time: float) -> bool:
        """Whether the event is in progress at ``time``."""
        return self.start <= time < self.end

    def multiplier(self, metric: str, time: float) -> float:
        """Perturbation multiplier for ``metric`` at ``time`` (1.0 if inactive).

        The perturbation ramps down linearly over the event's final 20%
        so recoveries look like production recoveries, not step edges.
        """
        if not self.active_at(time):
            return 1.0
        base = _EVENT_PROFILES[self.kind].get(metric, 1.0)
        deviation = (base - 1.0) * self.intensity
        ramp_start = self.start + 0.8 * self.duration
        if time >= ramp_start:
            remaining = (self.end - time) / (self.end - ramp_start)
            deviation *= remaining
        return 1.0 + deviation
