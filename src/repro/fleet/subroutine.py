"""Subroutine call-graph model.

A service is modelled as a tree of subroutines rooted at an entry frame.
Each node has a *self cost* — the probability mass of a stack sample
ending (on-CPU) in that subroutine.  A stack-trace sample is a random
root-to-leaf-frame path drawn proportionally to self costs, so a
subroutine's inclusion probability (= its expected gCPU) is its own self
cost plus that of all descendants, exactly matching the paper's "the
gCPU of a subroutine includes the child subroutines recursively invoked
by it" (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.profiling.stacktrace import Frame, StackTrace

__all__ = ["SubroutineSpec", "CallPath", "CallGraph"]


@dataclass
class SubroutineSpec:
    """One subroutine in the call graph.

    Attributes:
        name: Fully qualified name (``Namespace::Class::method`` style
            names let the cost-shift detector derive class domains).
        self_cost: Relative probability of a sample being on-CPU inside
            this subroutine's own code (not its callees).  Costs are
            normalized graph-wide; only ratios matter.
        parent: Caller's name, or ``None`` for the root.
        endpoint: Optional endpoint this subroutine serves, for
            endpoint-level regression detection.
        metadata: Optional ``SetFrameMetadata`` annotation attached to
            this subroutine's frames.
    """

    name: str
    self_cost: float
    parent: Optional[str] = None
    endpoint: Optional[str] = None
    metadata: Optional[str] = None

    def __post_init__(self) -> None:
        if self.self_cost < 0:
            raise ValueError(f"self_cost of {self.name} must be >= 0")


@dataclass(frozen=True)
class CallPath:
    """A root-to-node path with its sampling probability."""

    subroutines: Tuple[str, ...]
    probability: float


class CallGraph:
    """A mutable call tree supporting sampling and cost edits.

    Args:
        root: Name of the root frame (e.g. ``"_start"`` or the service
            main loop).

    Example::

        graph = CallGraph(root="main")
        graph.add(SubroutineSpec("main::handle", self_cost=1.0, parent="main"))
        graph.add(SubroutineSpec("util::parse", self_cost=0.5, parent="main::handle"))
        samples = graph.sample_traces(1000, rng)
    """

    def __init__(self, root: str = "_start", root_self_cost: float = 0.0) -> None:
        self._nodes: Dict[str, SubroutineSpec] = {
            root: SubroutineSpec(name=root, self_cost=root_self_cost, parent=None)
        }
        self._children: Dict[str, List[str]] = {root: []}
        self.root = root

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------

    def add(self, spec: SubroutineSpec) -> None:
        """Add a subroutine under its declared parent.

        Raises:
            ValueError: If the name exists or the parent is unknown.
        """
        if spec.name in self._nodes:
            raise ValueError(f"duplicate subroutine {spec.name}")
        parent = spec.parent or self.root
        if parent not in self._nodes:
            raise ValueError(f"unknown parent {parent} for {spec.name}")
        spec.parent = parent
        self._nodes[spec.name] = spec
        self._children[spec.name] = []
        self._children[parent].append(spec.name)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def get(self, name: str) -> SubroutineSpec:
        """The spec for ``name``.

        Raises:
            KeyError: If unknown.
        """
        return self._nodes[name]

    def names(self) -> List[str]:
        """All subroutine names, root included, sorted."""
        return sorted(self._nodes)

    def children(self, name: str) -> Tuple[str, ...]:
        return tuple(self._children[name])

    def scale_cost(self, name: str, factor: float) -> None:
        """Multiply a subroutine's self cost (a performance regression
        or improvement introduced by a code change).

        Raises:
            KeyError: If unknown; ValueError: on a negative factor.
        """
        if factor < 0:
            raise ValueError("factor must be >= 0")
        self._nodes[name].self_cost *= factor

    def add_cost(self, name: str, delta: float) -> None:
        """Add ``delta`` to a subroutine's self cost (floored at 0)."""
        node = self._nodes[name]
        node.self_cost = max(0.0, node.self_cost + delta)

    def move_cost(self, source: str, target: str, fraction: float) -> float:
        """Shift a fraction of ``source``'s self cost to ``target``.

        This models code refactoring that moves code across subroutines
        without changing total cost — the Figure 1(b) false-positive
        source.  Returns the amount moved.

        Raises:
            KeyError: On unknown subroutines.
            ValueError: If fraction is outside [0, 1].
        """
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")
        moved = self._nodes[source].self_cost * fraction
        self._nodes[source].self_cost -= moved
        self._nodes[target].self_cost += moved
        return moved

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _path_to(self, name: str) -> Tuple[str, ...]:
        path: List[str] = []
        node: Optional[str] = name
        while node is not None:
            path.append(node)
            node = self._nodes[node].parent
        return tuple(reversed(path))

    def total_cost(self) -> float:
        """Sum of self costs graph-wide (the normalization constant)."""
        return sum(node.self_cost for node in self._nodes.values())

    def paths(self) -> List[CallPath]:
        """All root-to-node paths with positive sampling probability."""
        total = self.total_cost()
        if total <= 0:
            return []
        return [
            CallPath(subroutines=self._path_to(name), probability=node.self_cost / total)
            for name, node in sorted(self._nodes.items())
            if node.self_cost > 0
        ]

    def inclusion_probabilities(self) -> Dict[str, float]:
        """Expected gCPU of every subroutine.

        A subroutine appears in a sample whenever the sample lands in it
        or any descendant, so its inclusion probability is the normalized
        sum of self costs over its subtree.
        """
        total = self.total_cost()
        result: Dict[str, float] = {}

        def subtree_cost(name: str) -> float:
            cost = self._nodes[name].self_cost
            for child in self._children[name]:
                cost += subtree_cost(child)
            result[name] = cost
            return cost

        subtree_cost(self.root)
        if total > 0:
            for name in result:
                result[name] /= total
        return result

    def sample_traces(
        self,
        n_samples: int,
        rng: np.random.Generator,
        collapse: bool = True,
    ) -> List[StackTrace]:
        """Draw ``n_samples`` stack traces from the cost distribution.

        Args:
            n_samples: Number of samples.
            rng: Random generator.
            collapse: Merge identical traces into one weighted trace
                (the storage format of production profilers).

        Returns:
            Stack traces; with ``collapse`` their weights sum to
            ``n_samples``.
        """
        paths = self.paths()
        if not paths or n_samples <= 0:
            return []
        probabilities = np.array([p.probability for p in paths])
        probabilities /= probabilities.sum()
        counts = rng.multinomial(n_samples, probabilities)

        traces: List[StackTrace] = []
        for path, count in zip(paths, counts):
            if count == 0:
                continue
            frames = tuple(
                Frame(
                    name,
                    kind="native",
                    metadata=self._nodes[name].metadata,
                )
                for name in path.subroutines
            )
            if collapse:
                traces.append(StackTrace(frames=frames, weight=float(count)))
            else:
                traces.extend(StackTrace(frames=frames) for _ in range(count))
        return traces

    def clone(self) -> "CallGraph":
        """Deep copy (used to snapshot pre-change state)."""
        copy = CallGraph(root=self.root, root_self_cost=self._nodes[self.root].self_cost)
        order = [self.root]
        seen = {self.root}
        while order:
            name = order.pop(0)
            for child in self._children[name]:
                if child in seen:
                    continue
                node = self._nodes[child]
                copy.add(
                    SubroutineSpec(
                        name=node.name,
                        self_cost=node.self_cost,
                        parent=node.parent,
                        endpoint=node.endpoint,
                        metadata=node.metadata,
                    )
                )
                order.append(child)
                seen.add(child)
        return copy


def build_random_call_graph(
    n_subroutines: int,
    rng: np.random.Generator,
    n_classes: int = 10,
    n_endpoints: int = 5,
    fanout: int = 4,
    cost_dispersion: float = 1.0,
) -> CallGraph:
    """Generate a realistic random service call graph.

    Subroutine self costs are log-normal (a few hot subroutines, a long
    tail of cold ones — matching the paper's observation that non-trivial
    subroutines have a median gCPU of 0.0083%).

    Args:
        n_subroutines: Nodes to create, excluding the root.
        rng: Random generator.
        n_classes: Number of ``Class::method`` groupings.
        n_endpoints: Endpoints assigned to top-level subroutines.
        fanout: Average children per node.
        cost_dispersion: Sigma of the log-normal cost distribution.

    Returns:
        A populated :class:`CallGraph`.
    """
    graph = CallGraph(root="_start")
    names: List[str] = []
    for i in range(n_subroutines):
        class_id = i % n_classes
        name = f"svc::Class{class_id}::method_{i}"
        if names and rng.random() > 1.0 / max(1, fanout):
            parent = names[int(rng.integers(0, len(names)))]
        else:
            parent = "_start"
        endpoint = f"/endpoint/{i % n_endpoints}" if parent == "_start" else None
        graph.add(
            SubroutineSpec(
                name=name,
                self_cost=float(rng.lognormal(mean=0.0, sigma=cost_dispersion)),
                parent=parent,
                endpoint=endpoint,
            )
        )
        names.append(name)
    return graph
