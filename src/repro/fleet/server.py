"""Servers and hardware generations.

A hyperscale fleet mixes server generations with different performance
characteristics; the paper's Figure 2 simulation models this as servers
whose CPU-usage distributions differ in both mean and variance, and whose
response to the *same* code change differs in magnitude (0.003% vs 0.007%
in the paper's example).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerGeneration", "Server"]


@dataclass(frozen=True)
class ServerGeneration:
    """A hardware generation's performance profile.

    Attributes:
        name: Generation label, e.g. ``"gen-2019"``.
        cpu_mean: Baseline mean CPU utilization fraction on this hardware
            for a reference workload (e.g. 0.4 for 40%).
        cpu_variance: Variance of per-sample CPU utilization.
        regression_sensitivity: Multiplier applied to a code change's
            nominal regression magnitude on this generation ("a code
            change may perform differently across server generations").
    """

    name: str
    cpu_mean: float
    cpu_variance: float
    regression_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.cpu_mean <= 1:
            raise ValueError("cpu_mean must be in [0, 1]")
        if self.cpu_variance < 0:
            raise ValueError("cpu_variance must be >= 0")
        if self.regression_sensitivity <= 0:
            raise ValueError("regression_sensitivity must be > 0")


@dataclass
class Server:
    """One server of the fleet.

    Attributes:
        server_id: Unique id within the service.
        generation: Hardware generation.
        healthy: Whether the server currently serves traffic (failures
            and maintenance toggle this).
    """

    server_id: int
    generation: ServerGeneration
    healthy: bool = True


#: A plausible default mix of three generations.
DEFAULT_GENERATIONS = (
    ServerGeneration("gen-a", cpu_mean=0.40, cpu_variance=0.01, regression_sensitivity=0.6),
    ServerGeneration("gen-b", cpu_mean=0.50, cpu_variance=0.015, regression_sensitivity=1.0),
    ServerGeneration("gen-c", cpu_mean=0.60, cpu_variance=0.02, regression_sensitivity=1.4),
)
