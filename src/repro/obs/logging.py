"""Structured JSON logging with correlation IDs.

Every log line is one JSON object carrying the event name, the logger,
the level, and whatever correlation context is bound at the call site —
most importantly the *series* being scanned and the *alert* being
delivered, so an operator can reconstruct one incident's whole story
with a single ``grep`` over mixed service/runtime/pipeline output.

The library itself never configures handlers (the ``repro`` logger gets
a :class:`logging.NullHandler`, the standard library-citizen default);
applications opt in with :func:`configure_json_logging`, and the CLI
exposes it as ``--log-json``.

Example::

    from repro.obs.logging import configure_json_logging, get_logger, log_context

    configure_json_logging()
    log = get_logger("repro.service")
    with log_context(series="web.render.gcpu", alert="alert-9f31c2a07d44"):
        log.info("incident delivered", magnitude=0.0021, shard=3)
"""

from __future__ import annotations

import hashlib
import json
import logging
import sys
from contextlib import contextmanager
from contextvars import ContextVar
from typing import IO, Dict, Iterator, Mapping, Optional

__all__ = [
    "JsonLogFormatter",
    "StructuredLogger",
    "configure_json_logging",
    "correlation_id",
    "current_context",
    "get_logger",
    "log_context",
]

#: Correlation context for the current task/thread.  Stored as a tuple of
#: (key, value) pairs so binding never mutates an inherited mapping.
_CONTEXT: ContextVar[tuple] = ContextVar("repro_log_context", default=())

_ROOT_LOGGER = "repro"

# Library default: silence "No handlers could be found" without forcing
# any output format on the embedding application.
logging.getLogger(_ROOT_LOGGER).addHandler(logging.NullHandler())


def correlation_id(*parts: object, prefix: str = "c") -> str:
    """A short, deterministic correlation id derived from ``parts``.

    Determinism is the point: the alert id for (metric, change time) is
    identical across serial and parallel execution, across restarts,
    and across the processes of one service — so logs from every layer
    of one incident join on the same key.

    Example::

        >>> correlation_id("web.render.gcpu", 86400.0, prefix="alert")
        'alert-c5d9d33f5808'
    """
    joined = "|".join(str(part) for part in parts)
    digest = hashlib.blake2b(joined.encode("utf-8"), digest_size=6).hexdigest()
    return f"{prefix}-{digest}"


def current_context() -> Dict[str, object]:
    """The correlation fields bound in the current context (a copy)."""
    return dict(_CONTEXT.get())


@contextmanager
def log_context(**fields: object) -> Iterator[None]:
    """Bind correlation fields for the duration of the block.

    Nested scopes layer: inner bindings shadow outer ones and are
    removed when the block exits.  Context propagates per-thread and
    per-task (:mod:`contextvars`), so parallel scan threads never see
    each other's series ids.
    """
    merged = dict(_CONTEXT.get())
    merged.update(fields)
    token = _CONTEXT.set(tuple(merged.items()))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


class JsonLogFormatter(logging.Formatter):
    """Renders each record as one JSON object per line.

    Payload layout: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``event`` (the log message), then bound correlation context, then
    any structured fields attached at the call site.  Non-serializable
    values fall back to ``str``.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(current_context())
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class StructuredLogger:
    """A thin wrapper giving :class:`logging.Logger` keyword fields.

    ``log.info("scan complete", monitor="gcpu", scans=4)`` attaches the
    keywords as the record's ``fields`` attribute, which
    :class:`JsonLogFormatter` merges into the JSON payload (plain
    formatters simply show the event string).  Cheap when disabled: the
    level check happens before any dict is built.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def logger(self) -> logging.Logger:
        return self._logger

    def isEnabledFor(self, level: int) -> bool:  # noqa: N802 (logging API)
        return self._logger.isEnabledFor(level)

    def _log(self, level: int, event: str, fields: Mapping[str, object]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": dict(fields)})

    def debug(self, event: str, **fields: object) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(logging.ERROR, event, fields)

    def exception(self, event: str, **fields: object) -> None:
        if self._logger.isEnabledFor(logging.ERROR):
            self._logger.error(
                event, exc_info=True, extra={"fields": dict(fields)}
            )


def get_logger(name: str) -> StructuredLogger:
    """A :class:`StructuredLogger` under the ``repro`` hierarchy."""
    if name != _ROOT_LOGGER and not name.startswith(_ROOT_LOGGER + "."):
        name = f"{_ROOT_LOGGER}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure_json_logging(
    stream: Optional[IO[str]] = None,
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` logger tree.

    Idempotent per stream: calling again with the same stream replaces
    the previous JSON handler instead of stacking a duplicate.

    Args:
        stream: Destination (default ``sys.stderr``).
        level: Minimum level for the ``repro`` tree.

    Returns:
        The installed handler (useful for tests and teardown).
    """
    target = stream if stream is not None else sys.stderr
    root = logging.getLogger(_ROOT_LOGGER)
    for handler in list(root.handlers):
        if isinstance(handler.formatter, JsonLogFormatter) and getattr(
            handler, "stream", None
        ) is target:
            root.removeHandler(handler)
    handler = logging.StreamHandler(target)
    handler.setFormatter(JsonLogFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    return handler
