"""Observability: structured logs, funnel spans, and pull endpoints.

FBDetect earns its keep at Meta by being *operable*: §5–§6 of the paper
are about on-call engineers triaging the Figure 6 funnel stage by stage
and trusting its drop rates.  This package is the layer that makes the
reproduction operable the same way:

- :mod:`repro.obs.logging` — structured JSON logging with
  per-series/per-alert correlation IDs bound through context managers,
  so every log line of one incident can be grepped by one id.
- :mod:`repro.obs.spans` — span-based tracing of every funnel stage:
  each pipeline run records one :class:`Span` per stage (input/output
  counts, drop reasons, elapsed seconds) into a ring-buffer
  :class:`TraceStore`; :class:`FunnelTrace` aggregates the retained
  runs into a live Table 3-style stage-attrition view.
- :mod:`repro.obs.http` — a stdlib :mod:`http.server` pull surface for
  the streaming service: ``/metrics`` (Prometheus text exposition of
  the self-metrics registry), ``/healthz`` (shard liveness, queue
  depth vs. backpressure threshold, checkpoint age), and ``/status``
  (JSON funnel snapshot plus the live funnel trace).

Dependency direction: this package imports only the standard library,
so :mod:`repro.core`, :mod:`repro.runtime`, and :mod:`repro.service`
may all depend on it without cycles.
"""

from repro.obs.logging import (
    JsonLogFormatter,
    StructuredLogger,
    configure_json_logging,
    correlation_id,
    current_context,
    get_logger,
    log_context,
)
from repro.obs.spans import STAGES, FunnelTrace, RunTrace, Span, StageTally, TraceStore

__all__ = [
    "FunnelTrace",
    "JsonLogFormatter",
    "ObservabilityServer",
    "RunTrace",
    "STAGES",
    "Span",
    "StageTally",
    "StructuredLogger",
    "TraceStore",
    "configure_json_logging",
    "correlation_id",
    "current_context",
    "get_logger",
    "log_context",
]


def __getattr__(name: str):
    # ObservabilityServer is imported lazily so that `import repro.obs`
    # (pulled in by the core pipeline for span types) never pays for the
    # http.server machinery on the scan hot path.
    if name == "ObservabilityServer":
        from repro.obs.http import ObservabilityServer

        return ObservabilityServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
