"""Funnel-stage spans, the trace ring buffer, and the live funnel view.

One pipeline run (one ``advance`` of a monitor) records exactly one
:class:`Span` per Figure 6 funnel stage.  A span carries what Table 3
needs to stay auditable in production: how many candidates *entered*
the stage, how many *survived*, why the rest were dropped, and how long
the stage spent — so the stage-attrition view the paper prints once can
be reproduced live from the last N runs.

Counts telescope by construction on the short-term path: stage N's
``outputs`` equals stage N+1's ``inputs``.  Planned-change suppression
(not a Table 3 stage) is tallied as a drop inside the
``same_regression`` span, so it does not break the identity.  The
long-term path does: it joins the funnel at the threshold stage (no
went-away/seasonality stages, §5.3), so with ``long_term`` enabled the
spans record the *actual* stage inputs rather than forcing the
identity — honesty over symmetry.

This module imports only the standard library, so the core pipeline can
depend on it without entangling core with the service layer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "STAGES",
    "Span",
    "StageTally",
    "RunTrace",
    "TraceStore",
    "FunnelTrace",
    "Event",
    "EventLog",
]

#: Canonical Figure 6 funnel stage order, matching Table 3's rows.  The
#: core pipeline re-exports this tuple; it lives here so observability
#: consumers never import detection code just to name stages.
STAGES: Tuple[str, ...] = (
    "change_points",
    "went_away",
    "seasonality",
    "threshold",
    "same_regression",
    "som_dedup",
    "cost_shift",
    "pairwise_dedup",
)


@dataclass
class StageTally:
    """Mutable per-run accumulator behind one stage's span.

    The pipeline calls :meth:`observe` once per candidate entering the
    stage; block-level stages (the dedup passes) call :meth:`bulk`
    once with their collection sizes.
    """

    inputs: int = 0
    outputs: int = 0
    seconds: float = 0.0
    drops: Dict[str, int] = field(default_factory=dict)
    first_entered: Optional[float] = None

    def observe(
        self,
        passed: bool,
        reason: Optional[str] = None,
        seconds: float = 0.0,
        wall: Optional[float] = None,
    ) -> None:
        """Record one candidate passing through the stage."""
        if self.first_entered is None:
            self.first_entered = wall if wall is not None else time.time()
        self.inputs += 1
        self.seconds += seconds
        if passed:
            self.outputs += 1
        else:
            key = reason or "dropped"
            self.drops[key] = self.drops.get(key, 0) + 1

    def bulk(
        self,
        inputs: int,
        outputs: int,
        reason: str,
        seconds: float,
        wall: Optional[float] = None,
    ) -> None:
        """Record a whole-collection stage (dedup passes) in one call."""
        if self.first_entered is None:
            self.first_entered = wall if wall is not None else time.time()
        self.inputs += inputs
        self.outputs += outputs
        dropped = inputs - outputs
        if dropped > 0:
            self.drops[reason] = self.drops.get(reason, 0) + dropped
        self.seconds += seconds

    def freeze(self, stage: str) -> "Span":
        return Span(
            stage=stage,
            inputs=self.inputs,
            outputs=self.outputs,
            seconds=self.seconds,
            drops=dict(self.drops),
            started=self.first_entered,
        )


@dataclass(frozen=True)
class Span:
    """One funnel stage's footprint in one pipeline run.

    Attributes:
        stage: Stage name (one of :data:`STAGES`).
        inputs: Candidates (or series, for ``change_points``) entering.
        outputs: Candidates surviving the stage.
        seconds: Time spent in the stage across all candidates.
        drops: Drop reason -> count; sums to ``inputs - outputs``.
        started: Wall-clock time the stage first ran this scan (``None``
            when no candidate ever reached the stage).
    """

    stage: str
    inputs: int
    outputs: int
    seconds: float
    drops: Dict[str, int] = field(default_factory=dict)
    started: Optional[float] = None

    @property
    def dropped(self) -> int:
        return self.inputs - self.outputs

    @property
    def ended(self) -> Optional[float]:
        return self.started + self.seconds if self.started is not None else None

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "inputs": self.inputs,
            "outputs": self.outputs,
            "dropped": self.dropped,
            "seconds": self.seconds,
            "drops": dict(self.drops),
            "started": self.started,
            "ended": self.ended,
        }


@dataclass(frozen=True)
class RunTrace:
    """All spans of one pipeline run (one monitor scan at one time).

    Attributes:
        monitor: The detection config name that ran.
        now: The scan's reference (detection) time.
        wall_started: Wall-clock start of the run.
        seconds: Wall-clock run duration.
        spans: One span per funnel stage, in :data:`STAGES` order.
    """

    monitor: str
    now: float
    wall_started: float
    seconds: float
    spans: Tuple[Span, ...]

    def span(self, stage: str) -> Span:
        """The span for ``stage``.

        Raises:
            KeyError: On an unknown stage name.
        """
        for span in self.spans:
            if span.stage == stage:
                return span
        raise KeyError(f"no span for stage {stage!r}")

    def telescopes(self) -> bool:
        """Whether every stage's inputs equal the previous stage's outputs.

        True for short-term-only configurations; the long-term path
        intentionally breaks the identity (see the module docstring).
        """
        return all(
            later.inputs == earlier.outputs
            for earlier, later in zip(self.spans, self.spans[1:])
        )

    def to_dict(self) -> dict:
        return {
            "monitor": self.monitor,
            "now": self.now,
            "wall_started": self.wall_started,
            "seconds": self.seconds,
            "telescopes": self.telescopes(),
            "spans": [span.to_dict() for span in self.spans],
        }


class TraceStore:
    """Thread-safe ring buffer of the most recent :class:`RunTrace`\\ s.

    This is the object pipelines hold as their ``tracer``: each run
    calls :meth:`record` once.  The buffer is bounded (``capacity``
    runs), so an always-on service pays O(capacity) memory however long
    it lives.  Traces are process-local observability state: pickling a
    store (checkpoint blobs, parallel shard snapshots) keeps the
    capacity but *drops the buffered runs* — worker processes record
    into a fresh store and ship their runs back explicitly, and a
    restored service starts with an empty trace window.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._runs: Deque[RunTrace] = deque(maxlen=capacity)
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, run: RunTrace) -> None:
        """Append one run trace (evicting the oldest when full)."""
        with self._lock:
            self._runs.append(run)
            self._recorded += 1

    def record_many(self, runs: Iterable[RunTrace]) -> None:
        """Append several run traces (the parallel-merge path)."""
        with self._lock:
            for run in runs:
                self._runs.append(run)
                self._recorded += 1

    def runs(self) -> List[RunTrace]:
        """A snapshot of the retained runs, oldest first."""
        with self._lock:
            return list(self._runs)

    def clear(self) -> None:
        with self._lock:
            self._runs.clear()

    @property
    def recorded(self) -> int:
        """Total runs ever recorded (including evicted ones)."""
        return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)

    def __getstate__(self) -> dict:
        # Keep configuration, drop process-local state (lock + buffer).
        return {"capacity": self.capacity, "_recorded": self._recorded}

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self._recorded = state.get("_recorded", 0)
        self._runs = deque(maxlen=self.capacity)
        self._lock = threading.Lock()


@dataclass(frozen=True)
class Event:
    """One operational event (fault injected, shard degraded, recovered).

    Attributes:
        kind: Event type (``fault_injected``, ``degraded``,
            ``recovered``, ``checkpoint_fallback`` ...).
        wall: Wall-clock time the event was recorded.
        fields: Event-specific payload (shard id, reason, fault kind).
    """

    kind: str
    wall: float
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "wall": self.wall, **self.fields}


class EventLog:
    """Thread-safe bounded ring buffer of :class:`Event`\\ s.

    The failure-path counterpart of :class:`TraceStore`: where run
    traces answer "what is the funnel doing", the event log answers
    "what broke, and did it recover" — fault injections, per-shard
    degradation transitions, checkpoint-generation fallbacks.  Exposed
    through the service's ``/faults`` endpoint.  Like the trace store,
    the buffer is process-local: pickling keeps the capacity but drops
    the buffered events.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, kind: str, wall: Optional[float] = None, **fields: object) -> Event:
        """Append one event (evicting the oldest when full)."""
        event = Event(
            kind=kind, wall=wall if wall is not None else time.time(), fields=fields
        )
        with self._lock:
            self._events.append(event)
            self._recorded += 1
        return event

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Retained events oldest-first, optionally filtered by kind."""
        with self._lock:
            retained = list(self._events)
        if kind is None:
            return retained
        return [event for event in retained if event.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __getstate__(self) -> dict:
        return {"capacity": self.capacity, "_recorded": self._recorded}

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self._recorded = state.get("_recorded", 0)
        self._events = deque(maxlen=self.capacity)
        self._lock = threading.Lock()


class FunnelTrace:
    """Live Table 3: stage attrition aggregated over retained run traces.

    Where :class:`~repro.core.pipeline.FunnelCounters` keeps cumulative
    survivor counts since the service started, a ``FunnelTrace`` is the
    *windowed* view over whatever the ring buffer still holds — inputs,
    outputs, drop reasons, and time per stage — which is what an on-call
    engineer actually triages ("what is the funnel doing right now?").
    """

    def __init__(self, runs: Sequence[RunTrace]) -> None:
        self.runs = list(runs)
        self.totals: Dict[str, StageTally] = {s: StageTally() for s in STAGES}
        for run in self.runs:
            for span in run.spans:
                tally = self.totals.setdefault(span.stage, StageTally())
                tally.inputs += span.inputs
                tally.outputs += span.outputs
                tally.seconds += span.seconds
                for reason, count in span.drops.items():
                    tally.drops[reason] = tally.drops.get(reason, 0) + count

    @classmethod
    def from_store(cls, store: TraceStore) -> "FunnelTrace":
        return cls(store.runs())

    def telescopes(self) -> bool:
        """Whether aggregate stage inputs chain onto the previous outputs."""
        ordered = [self.totals[s] for s in STAGES]
        return all(
            later.inputs == earlier.outputs
            for earlier, later in zip(ordered, ordered[1:])
        )

    def rows(self) -> List[dict]:
        """Per-stage aggregate rows in funnel order (JSON-friendly)."""
        detected = self.totals[STAGES[0]].outputs
        rows = []
        for stage in STAGES:
            tally = self.totals[stage]
            alive = tally.outputs
            rows.append(
                {
                    "stage": stage,
                    "inputs": tally.inputs,
                    "outputs": alive,
                    "dropped": tally.inputs - alive,
                    "drops": dict(tally.drops),
                    "seconds": tally.seconds,
                    "reduction": (detected / alive) if alive else None,
                }
            )
        return rows

    def to_dict(self) -> dict:
        return {
            "runs": len(self.runs),
            "telescopes": self.telescopes(),
            "stages": self.rows(),
        }

    def render(self) -> str:
        """Human-readable stage-attrition table (Table 3, live)."""
        lines = [
            f"FunnelTrace over {len(self.runs)} run(s)",
            f"{'stage':<16} {'in':>7} {'out':>7} {'dropped':>8} "
            f"{'1/N':>8} {'seconds':>9}  top drop reason",
        ]
        detected = self.totals[STAGES[0]].outputs
        for stage in STAGES:
            tally = self.totals[stage]
            alive = tally.outputs
            ratio = f"1/{detected / alive:.0f}" if alive and detected else "--"
            top = max(tally.drops.items(), key=lambda kv: kv[1])[0] if tally.drops else ""
            lines.append(
                f"{stage:<16} {tally.inputs:>7} {alive:>7} "
                f"{tally.inputs - alive:>8} {ratio:>8} {tally.seconds:>9.4f}  {top}"
            )
        return "\n".join(lines)
