"""The pull-based observability surface (stdlib ``http.server``).

:class:`ObservabilityServer` exposes a running
:class:`~repro.service.service.StreamingDetectionService` (or anything
duck-typed like one) on three endpoints:

- ``GET /metrics`` — Prometheus text exposition (version 0.0.4) of the
  self-metrics registry: ingest/backpressure counters, the per-shard
  advance-latency histograms, incremental-cache hit counters, pipeline
  stage timings.
- ``GET /healthz`` — liveness/readiness JSON: per-shard queue depth vs.
  the backpressure threshold, flusher liveness, checkpoint age.  Answers
  ``200`` when healthy and ``503`` when degraded, so load balancers and
  Kubernetes probes can consume it directly.
- ``GET /status`` — the operator's funnel snapshot: cumulative
  :class:`~repro.core.pipeline.FunnelCounters`, the live
  :class:`~repro.obs.spans.FunnelTrace` over retained run traces, and
  recent per-run spans.
- ``GET /faults`` — the fault-injection view: the active
  :class:`~repro.faults.FaultPlan` with per-spec seen/fired counters,
  plus recent fault/degradation events.  During chaos drills this is
  how an operator tells injected failures from real ones; without an
  injector it reports ``{"enabled": false}``.
- ``GET /quality`` — the data-quality view: aggregate admission
  counters, per-shard quarantine snapshots (worst offenders, reason
  codes, quality scores), and stale-evicted series.  With the quality
  layer disabled it reports ``{"enabled": false}``.
- ``GET /detectors`` — the shadow-detector view: per-challenger funnel
  tallies (scans, fired, agreement with the incumbent, errors) merged
  across shards, keyed by deterministic param-hash detector IDs.  With
  no challengers registered it reports ``{"enabled": false}``.

``GET /`` returns a small JSON index of the endpoints.  The server runs
on a daemon thread (one handler thread per request), binds an ephemeral
port when ``port=0``, and never blocks detection: every endpoint reads
snapshots under the service's own locks.

Example::

    server = ObservabilityServer(service, port=0)
    server.start()
    print(server.url)         # e.g. http://127.0.0.1:49152
    ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.logging import get_logger

__all__ = ["ObservabilityServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_log = get_logger("repro.obs.http")


class _Handler(BaseHTTPRequestHandler):
    """Routes the observability endpoints.

    The owning :class:`_Server` carries the service reference; handler
    instances are per-request and stateless.
    """

    server_version = "repro-obs/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        # Whether a response line/headers already went down the wire.
        # If a renderer raises *after* that point, sending a second
        # response would interleave two HTTP messages on one keep-alive
        # connection and desync every request behind it — the only safe
        # recovery is to drop the connection.
        self._response_started = False
        try:
            if path == "/metrics":
                self._send_text(200, self.server.service.render_metrics(),
                                PROMETHEUS_CONTENT_TYPE)
            elif path == "/healthz":
                health = self.server.service.healthz()
                status = 200 if health.get("status") == "ok" else 503
                self._send_json(status, health)
            elif path == "/status":
                self._send_json(200, self.server.service.status_snapshot())
            elif path == "/faults":
                self._send_json(200, self._faults_payload())
            elif path == "/quality":
                self._send_json(200, self._quality_payload())
            elif path == "/detectors":
                self._send_json(200, self._detectors_payload())
            elif path == "/":
                self._send_json(200, {
                    "service": "repro-fbdetect",
                    "endpoints": [
                        "/metrics", "/healthz", "/status", "/faults",
                        "/quality", "/detectors",
                    ],
                })
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except Exception as error:
            _log.exception("observability endpoint failed", path=path)
            if self._response_started:
                # Headers (and possibly part of a body) are already out:
                # close the connection instead of double-responding.
                self.close_connection = True
            else:
                try:
                    self._send_json(500, {"error": str(error)})
                except Exception:  # pragma: no cover - client went away
                    self.close_connection = True

    def _quality_payload(self) -> dict:
        service = self.server.service
        if hasattr(service, "quality_snapshot"):
            return service.quality_snapshot()
        return {"enabled": False}

    def _detectors_payload(self) -> dict:
        service = self.server.service
        if hasattr(service, "detectors_snapshot"):
            return service.detectors_snapshot()
        return {"enabled": False}

    def _faults_payload(self) -> dict:
        service = self.server.service
        snapshot = None
        if hasattr(service, "faults_snapshot"):
            snapshot = service.faults_snapshot()
        payload: dict = {"enabled": snapshot is not None}
        if snapshot is not None:
            payload["plan"] = snapshot
        events = getattr(service, "events", None)
        if events is not None:
            payload["events"] = [event.to_dict() for event in events.events()]
        return payload

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self._response_started = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_text(
            status,
            json.dumps(payload, sort_keys=True, default=str),
            "application/json; charset=utf-8",
        )

    def log_message(self, format: str, *args: object) -> None:
        # Route http.server's stderr chatter through structured logging.
        _log.debug("http request", detail=format % args,
                   client=self.client_address[0])


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: object) -> None:
        super().__init__(address, _Handler)
        self.service = service


class ObservabilityServer:
    """Serves ``/metrics``, ``/healthz``, and ``/status`` for a service.

    Args:
        service: Anything exposing ``render_metrics() -> str``,
            ``healthz() -> dict`` (with a ``"status"`` key), and
            ``status_snapshot() -> dict`` — the streaming service's
            observability contract.
        host: Bind address (default loopback; bind ``0.0.0.0``
            explicitly to expose beyond the machine).
        port: TCP port; ``0`` picks an ephemeral free port (read it
            back from :attr:`port` after :meth:`start`).
    """

    def __init__(self, service: object, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread (idempotent).

        Raises:
            OSError: When the requested port cannot be bound.
        """
        if self._server is not None:
            return self
        self._server = _Server((self.host, self._requested_port), self.service)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-obs-{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("observability server started", url=self.url)
        return self

    def stop(self) -> None:
        """Shut down and release the port (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        _log.info("observability server stopped", url=self.url)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
