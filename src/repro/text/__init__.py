"""Text-analysis substrate: tokenization, n-gram TF-IDF, cosine similarity.

Used by SOMDedup to turn metric IDs into numeric features (§5.5.1), by
PairwiseDedup's text-cosine-similarity feature (§5.5.2), and by root-cause
analysis to score relevance between a regression context and a code-change
description (§5.6).
"""

from repro.text.similarity import cosine_similarity, text_cosine_similarity
from repro.text.tfidf import NgramTfidfVectorizer, TfidfVectorizer
from repro.text.tokenize import char_ngrams, tokenize_identifier, tokenize_text

__all__ = [
    "NgramTfidfVectorizer",
    "TfidfVectorizer",
    "char_ngrams",
    "cosine_similarity",
    "text_cosine_similarity",
    "tokenize_identifier",
    "tokenize_text",
]
