"""TF-IDF vectorization over word tokens or character n-grams.

Implements the standard ``tf * (log((1 + N) / (1 + df)) + 1)`` weighting
with L2 normalization, over either word tokens (root-cause text analysis,
§5.6) or character n-grams (SOMDedup metric-ID features, §5.5.1).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.text.tokenize import char_ngrams, tokenize_text

__all__ = ["TfidfVectorizer", "NgramTfidfVectorizer"]


class TfidfVectorizer:
    """Fit a TF-IDF model on a corpus and transform documents to vectors.

    Args:
        tokenizer: Callable mapping a document to its token list; defaults
            to :func:`repro.text.tokenize.tokenize_text`.
    """

    def __init__(self, tokenizer: Callable[[str], List[str]] | None = None) -> None:
        self._tokenizer = tokenizer or tokenize_text
        self._vocabulary: Dict[str, int] = {}
        self._idf: np.ndarray = np.empty(0)
        self._fitted = False

    @property
    def vocabulary(self) -> Dict[str, int]:
        """Token-to-column mapping (available after :meth:`fit`)."""
        return dict(self._vocabulary)

    def fit(self, corpus: Iterable[str]) -> "TfidfVectorizer":
        """Learn vocabulary and inverse document frequencies from ``corpus``."""
        doc_tokens = [self._tokenizer(doc) for doc in corpus]
        n_docs = len(doc_tokens)
        df: Counter = Counter()
        for tokens in doc_tokens:
            df.update(set(tokens))
        self._vocabulary = {token: i for i, token in enumerate(sorted(df))}
        idf = np.empty(len(self._vocabulary))
        for token, col in self._vocabulary.items():
            idf[col] = np.log((1 + n_docs) / (1 + df[token])) + 1.0
        self._idf = idf
        self._fitted = True
        return self

    def transform(self, document: str) -> np.ndarray:
        """L2-normalized TF-IDF vector of ``document``.

        Out-of-vocabulary tokens are ignored.

        Raises:
            RuntimeError: If called before :meth:`fit`.
        """
        if not self._fitted:
            raise RuntimeError("TfidfVectorizer.transform called before fit")
        vector = np.zeros(len(self._vocabulary))
        counts = Counter(self._tokenizer(document))
        for token, count in counts.items():
            col = self._vocabulary.get(token)
            if col is not None:
                vector[col] = count * self._idf[col]
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def fit_transform(self, corpus: Sequence[str]) -> np.ndarray:
        """Fit on ``corpus`` and return the stacked document matrix."""
        self.fit(corpus)
        return np.vstack([self.transform(doc) for doc in corpus])


class NgramTfidfVectorizer(TfidfVectorizer):
    """TF-IDF over character n-grams (SOMDedup's metric-ID encoding).

    Args:
        n_values: N-gram lengths; the paper uses 2- and 3-grams.
    """

    def __init__(self, n_values: Tuple[int, ...] = (2, 3)) -> None:
        super().__init__(tokenizer=lambda text: char_ngrams(text, n_values))
        self.n_values = n_values

    def fit(self, corpus: Iterable[str]) -> "NgramTfidfVectorizer":
        corpus = list(corpus)
        super().fit(corpus)
        # Centroid of the corpus in TF-IDF space, cached for the scalar
        # metric-ID projection below.
        if corpus and self._vocabulary:
            vectors = np.vstack([self.transform(doc) for doc in corpus])
            centroid = vectors.mean(axis=0)
            norm = np.linalg.norm(centroid)
            self._centroid = centroid / norm if norm > 0 else centroid
        else:
            self._centroid = np.zeros(len(self._vocabulary))
        return self

    def metric_id_feature(self, metric_id: str) -> float:
        """Scalar encoding of a metric ID's TF-IDF vector.

        SOMDedup needs metric IDs "converted into integers" so they can be
        one coordinate of a SOM feature vector.  We project the TF-IDF
        vector onto the corpus centroid direction: IDs sharing many
        n-grams with each other (and hence with the centroid region they
        occupy) land near each other, while unrelated IDs land apart.
        """
        vector = self.transform(metric_id)
        if vector.size == 0 or self._centroid.size != vector.size:
            return 0.0
        return float(vector @ self._centroid)
