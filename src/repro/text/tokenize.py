"""Tokenizers for code identifiers and natural-language text.

Metric IDs look like ``Namespace::Class::do_thing.gcpu`` and code-change
descriptions are short English texts; both need to be reduced to
comparable tokens before TF-IDF vectorization.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["tokenize_identifier", "tokenize_text", "char_ngrams"]

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_WORD = re.compile(r"[^0-9A-Za-z]+")


def tokenize_identifier(identifier: str) -> List[str]:
    """Split a code identifier into lowercase word tokens.

    Handles ``snake_case``, ``CamelCase``, ``::`` and ``.`` separators:
    ``"TaoClient::getAssoc_range"`` -> ``["tao", "client", "get",
    "assoc", "range"]``.
    """
    parts = [p for p in _NON_WORD.split(identifier) if p]
    tokens: List[str] = []
    for part in parts:
        tokens.extend(t.lower() for t in _CAMEL_BOUNDARY.split(part) if t)
    return tokens


def tokenize_text(text: str) -> List[str]:
    """Tokenize free-form text (titles, summaries) into lowercase words.

    Identifier-like words embedded in prose are further split the same way
    code identifiers are, so "loosening constraints for fooBar" matches a
    regression in subroutine ``foo_bar``.
    """
    tokens: List[str] = []
    for word in text.split():
        tokens.extend(tokenize_identifier(word))
    return tokens


def char_ngrams(text: str, n_values: tuple = (2, 3)) -> List[str]:
    """Character n-grams of ``text`` for the requested lengths.

    SOMDedup converts metric IDs "into integers using TF-IDF with 2- and
    3-gram lengths" (§5.5.1); these are the grams it vectorizes.
    """
    cleaned = text.lower()
    grams: List[str] = []
    for n in n_values:
        if n <= 0:
            raise ValueError("n-gram lengths must be positive")
        grams.extend(cleaned[i : i + n] for i in range(max(0, len(cleaned) - n + 1)))
    return grams
