"""Cosine similarity over vectors and raw texts."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.text.tfidf import TfidfVectorizer

__all__ = ["cosine_similarity", "text_cosine_similarity", "token_cosine_similarity"]


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine of the angle between two vectors (0.0 if either is zero).

    Raises:
        ValueError: On dimension mismatch.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    nx, ny = np.linalg.norm(x), np.linalg.norm(y)
    if nx == 0 or ny == 0:
        return 0.0
    return float(x @ y / (nx * ny))


def text_cosine_similarity(
    a: str,
    b: str,
    vectorizer: Optional[TfidfVectorizer] = None,
) -> float:
    """TF-IDF cosine similarity between two texts.

    When no pre-fitted ``vectorizer`` is given, a fresh one is fitted on
    the two texts alone — adequate for pairwise scoring where only the
    relative overlap matters.
    """
    if vectorizer is None:
        vectorizer = TfidfVectorizer().fit([a, b])
    return cosine_similarity(vectorizer.transform(a), vectorizer.transform(b))


def token_cosine_similarity(a: str, b: str) -> float:
    """Cosine similarity of raw token-count vectors.

    Unlike TF-IDF fitted on just the two texts (which *down-weights*
    exactly the tokens the texts share), raw counts measure plain token
    overlap — the right notion for comparing two metric IDs pairwise,
    as PairwiseDedup's text feature does (§5.5.2).
    """
    from collections import Counter

    from repro.text.tokenize import tokenize_text

    counts_a = Counter(tokenize_text(a))
    counts_b = Counter(tokenize_text(b))
    if not counts_a or not counts_b:
        return 0.0
    shared = set(counts_a) & set(counts_b)
    dot = sum(counts_a[t] * counts_b[t] for t in shared)
    norm_a = np.sqrt(sum(c * c for c in counts_a.values()))
    norm_b = np.sqrt(sum(c * c for c in counts_b.values()))
    return float(dot / (norm_a * norm_b))
