"""repro — a reproduction of FBDetect (SOSP '24).

FBDetect catches performance regressions as small as 0.005% in noisy
production environments by monitoring subroutine-level gCPU time series
derived from fleet-wide stack-trace sampling, filtering transient and
cost-shift false positives, deduplicating correlated regressions, and
ranking root-cause candidates.

Quickstart::

    import numpy as np
    from repro import FBDetect, table1_config

    config = table1_config("frontfaas_small").with_windows(
        historic=3600.0, analysis=1200.0, extended=600.0
    )
    detector = FBDetect(config)
    values = np.concatenate([
        np.random.default_rng(0).normal(0.001, 0.00002, 300),
        np.random.default_rng(1).normal(0.001 + 0.0001, 0.00002, 150),
    ])
    result = detector.detect_series(values, tags={"metric": "gcpu"})
    print(result.reported)

Subpackages:

- :mod:`repro.core` — the detection pipeline (the paper's contribution).
- :mod:`repro.stats` — statistical primitives (CUSUM, EM, SAX, STL ...).
- :mod:`repro.profiling` — stack-trace sampling, PyPerf, gCPU.
- :mod:`repro.fleet` — the production-fleet simulator.
- :mod:`repro.tsdb` — in-memory time-series database.
- :mod:`repro.som`, :mod:`repro.text` — clustering and text analysis.
- :mod:`repro.baselines` — EGADS-style comparison algorithms.
- :mod:`repro.workloads` — Table 1 synthetic workload generators.
- :mod:`repro.reporting` — incident reports and funnel summaries.
- :mod:`repro.runtime` — the scheduler and incident sinks.
- :mod:`repro.service` — the sharded streaming detection service
  (consistent-hash routing, backpressure, checkpoints, self-metrics).
- :mod:`repro.obs` — observability: structured JSON logging with
  correlation ids, funnel-stage span tracing, and the ``/metrics`` +
  ``/healthz`` + ``/status`` pull endpoints.
"""

from repro.config import TABLE1_CONFIGS, DetectionConfig, table1_config
from repro.core.detector import FBDetect
from repro.core.pipeline import DetectionPipeline, FunnelCounters, PipelineResult
from repro.core.planned_changes import PlannedChange, PlannedChangeCorrelator
from repro.core.types import (
    DetectionVerdict,
    FilterReason,
    MetricContext,
    Regression,
    RegressionGroup,
    RegressionKind,
)
from repro.obs import FunnelTrace, RunTrace, Span, TraceStore
from repro.service import (
    BackpressurePolicy,
    CheckpointManager,
    ConsistentHashRouter,
    MetricsRegistry,
    Sample,
    ServiceStats,
    StreamingDetectionService,
)
from repro.tsdb import TimeSeries, TimeSeriesDatabase, WindowSpec

__version__ = "1.0.0"

__all__ = [
    "BackpressurePolicy",
    "CheckpointManager",
    "ConsistentHashRouter",
    "DetectionConfig",
    "DetectionPipeline",
    "DetectionVerdict",
    "FBDetect",
    "FilterReason",
    "FunnelCounters",
    "FunnelTrace",
    "MetricContext",
    "MetricsRegistry",
    "PipelineResult",
    "PlannedChange",
    "PlannedChangeCorrelator",
    "Regression",
    "RegressionGroup",
    "RegressionKind",
    "RunTrace",
    "Sample",
    "Span",
    "TraceStore",
    "ServiceStats",
    "StreamingDetectionService",
    "TABLE1_CONFIGS",
    "TimeSeries",
    "TimeSeriesDatabase",
    "WindowSpec",
    "table1_config",
]
