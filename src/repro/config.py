"""Detection configurations, including every Table 1 workload preset.

A :class:`DetectionConfig` carries everything one periodic detection run
needs: window durations (Figure 4), the re-run interval, the detection
threshold (absolute, like FrontFaaS's 0.005% gCPU, or relative, like
Capacity Triage's 5%), and which detection paths run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.tsdb.windows import WindowSpec

__all__ = ["DetectionConfig", "TABLE1_CONFIGS", "table1_config"]

HOUR = 3600.0
DAY = 24 * HOUR


@dataclass(frozen=True)
class DetectionConfig:
    """One FBDetect workload configuration (a Table 1 row).

    Attributes:
        name: Configuration label.
        threshold: Detection threshold Δ.  Interpreted as an absolute
            metric shift when ``relative_threshold`` is ``False`` (e.g.
            0.00005 = a 0.005% gCPU increase), and as a fraction of the
            baseline when ``True`` (e.g. 0.05 = 5% relative).
        relative_threshold: Threshold interpretation (Table 1's last
            three rows are relative).
        rerun_interval: Seconds between detection runs.
        windows: Historic/analysis/extended durations.
        uses_stack_traces: Whether the workload has subroutine-level
            gCPU series (Table 1 "Leverage Stack Trace").
        long_term: Whether the long-term path runs for this workload
            (PythonFaaS skips it, per Table 3).
        higher_is_worse: Metric orientation; throughput-style metrics
            regress *downward* and are negated before detection.
        seasonality_period: Known season length in samples, if any.
    """

    name: str
    threshold: float
    relative_threshold: bool = False
    rerun_interval: float = 2 * HOUR
    windows: WindowSpec = field(
        default_factory=lambda: WindowSpec(historic=10 * DAY, analysis=4 * HOUR, extended=6 * HOUR)
    )
    uses_stack_traces: bool = True
    long_term: bool = True
    higher_is_worse: bool = True
    seasonality_period: Optional[int] = None

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")
        if self.rerun_interval <= 0:
            raise ValueError("rerun_interval must be positive")

    def exceeds_threshold(self, magnitude: float, baseline: float) -> bool:
        """Whether a regression magnitude clears this configuration's Δ."""
        if self.relative_threshold:
            if baseline == 0:
                return magnitude > 0
            return magnitude / abs(baseline) >= self.threshold
        return magnitude >= self.threshold

    def with_windows(
        self,
        historic: Optional[float] = None,
        analysis: Optional[float] = None,
        extended: Optional[float] = None,
    ) -> "DetectionConfig":
        """A copy with some window durations replaced (test/demo helper)."""
        spec = WindowSpec(
            historic=historic if historic is not None else self.windows.historic,
            analysis=analysis if analysis is not None else self.windows.analysis,
            extended=extended if extended is not None else self.windows.extended,
        )
        return replace(self, windows=spec)


def _spec(historic_days: float, analysis: float, extended: float) -> WindowSpec:
    return WindowSpec(historic=historic_days * DAY, analysis=analysis, extended=extended)


#: All twelve Table 1 rows.  Thresholds are in metric units: gCPU rows use
#: fractions (0.005% -> 0.00005); "relative" rows use fractions of baseline.
TABLE1_CONFIGS: Dict[str, DetectionConfig] = {
    "frontfaas_large": DetectionConfig(
        name="FrontFaaS (large)",
        threshold=0.03,
        rerun_interval=0.5 * HOUR,
        windows=_spec(10, 3 * HOUR, 0.0),
    ),
    "frontfaas_small": DetectionConfig(
        name="FrontFaaS (small)",
        threshold=0.00005,
        rerun_interval=2 * HOUR,
        windows=_spec(10, 4 * HOUR, 6 * HOUR),
    ),
    "pythonfaas_large": DetectionConfig(
        name="PythonFaaS (large)",
        threshold=0.005,
        rerun_interval=1 * HOUR,
        windows=_spec(10, 6 * HOUR, 0.0),
        long_term=False,
    ),
    "pythonfaas_small": DetectionConfig(
        name="PythonFaaS (small)",
        threshold=0.0003,
        rerun_interval=4 * HOUR,
        windows=_spec(10, 6 * HOUR, 6 * HOUR),
        long_term=False,
    ),
    "tao_frontfaas": DetectionConfig(
        name="TAO (FrontFaaS)",
        threshold=0.0005,
        rerun_interval=2 * HOUR,
        windows=_spec(10, 4 * HOUR, 1 * DAY),
    ),
    "tao_non_frontfaas": DetectionConfig(
        name="TAO (non-FrontFaaS)",
        threshold=0.0005,
        rerun_interval=1 * HOUR,
        windows=_spec(10, 1 * DAY, 6 * HOUR),
    ),
    "adserving_short": DetectionConfig(
        name="AdServing (short)",
        threshold=0.002,
        rerun_interval=6 * HOUR,
        windows=_spec(10, 1 * DAY, 12 * HOUR),
    ),
    "adserving_long": DetectionConfig(
        name="AdServing (long)",
        threshold=0.001,
        rerun_interval=1 * DAY,
        windows=_spec(16, 9 * DAY, 0.0),
    ),
    "invoicer_short": DetectionConfig(
        name="Invoicer (short)",
        threshold=0.005,
        rerun_interval=12 * HOUR,
        windows=_spec(14, 1 * DAY, 1 * DAY),
    ),
    "ct_supply_short": DetectionConfig(
        name="CT-supply (short)",
        threshold=0.05,
        relative_threshold=True,
        rerun_interval=12 * HOUR,
        windows=_spec(7, 1 * DAY, 1 * DAY),
        uses_stack_traces=False,
        higher_is_worse=False,
    ),
    "ct_supply_long": DetectionConfig(
        name="CT-supply (long)",
        threshold=0.05,
        relative_threshold=True,
        rerun_interval=12 * HOUR,
        windows=_spec(10, 7 * DAY, 1 * DAY),
        uses_stack_traces=False,
        higher_is_worse=False,
    ),
    "ct_demand": DetectionConfig(
        name="CT-demand",
        threshold=0.05,
        relative_threshold=True,
        rerun_interval=12 * HOUR,
        windows=_spec(7, 1 * DAY, 0.0),
        uses_stack_traces=False,
        higher_is_worse=True,
    ),
}


def table1_config(key: str) -> DetectionConfig:
    """Look up a Table 1 preset by key.

    Raises:
        KeyError: Listing the valid keys, when unknown.
    """
    try:
        return TABLE1_CONFIGS[key]
    except KeyError:
        raise KeyError(
            f"unknown config {key!r}; valid keys: {sorted(TABLE1_CONFIGS)}"
        ) from None
