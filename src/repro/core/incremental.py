"""Incremental detector state: the per-series scan cache.

At production scale FBDetect re-scans ~800k subroutine series every
cycle; most of them are quiet most of the time, yet the offline
CUSUM+EM+LRT detector pays O(W) per series per scan regardless.  This
module makes repeat scans cheap: a per-series
:class:`~repro.stats.incremental.StreamingCusum` screen is anchored on
the analysis window whenever a full scan runs, and subsequent scans fold
in only the points that arrived since — O(n) for n new points.  The full
detector re-runs only when something could plausibly have changed:

- the screen fired (evidence of a mean shift in the new points),
- the previous full scan produced a change-point candidate (its
  lifecycle — merger suppression, went-away — needs the full pipeline),
- the window drifted a full analysis span past the anchor (bounds the
  approximation: a skip is only ever based on a window that still
  overlaps the anchored one),
- or the series stopped being append-only (backfill, retention, or a
  restore rewrote history), which invalidates the anchor outright.

The cache is deliberately conservative: the screen is tuned to fire on
smaller shifts than the offline detector reports, so a skipped scan is
one the full pipeline would almost surely have scored "no candidate".

Checkpoint semantics: the cache pickles with its pipeline so the
parallel executor can round-trip shard state without losing it, but a
*restore* is a trust boundary — restored services must call
:meth:`IncrementalScanCache.clear` (via
``DetectionPipeline.invalidate_incremental``) so stale anchors can never
suppress a re-scan over replayed or repaired history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.stats.incremental import StreamingCusum
from repro.tsdb.series import TimeSeries

__all__ = ["IncrementalScanCache"]


@dataclass
class _SeriesAnchor:
    """Per-series incremental state between full scans."""

    anchor_end: float  # timestamp of the newest point folded into the screen
    anchor_len: int  # series length at that moment
    full_scan_at: float  # reference time of the last full scan
    had_candidate: bool  # whether that scan produced a change-point candidate
    screen: StreamingCusum


class IncrementalScanCache:
    """Decides, per series, whether a full windowed scan is needed.

    Args:
        max_staleness: Seconds of reference-time drift after which a
            full scan is forced even with a quiet screen.  Callers pass
            the analysis-window duration so a skip is always based on a
            window overlapping the anchored one.
        drift: Screen allowance (see :class:`StreamingCusum`).
        threshold: Screen decision interval (see :class:`StreamingCusum`).

    Plain-attribute state only: pickles inside shard checkpoints and
    across process-pool boundaries.
    """

    def __init__(
        self,
        max_staleness: float,
        drift: float = 0.75,
        threshold: float = 6.0,
    ) -> None:
        if max_staleness <= 0:
            raise ValueError("max_staleness must be positive")
        self.max_staleness = float(max_staleness)
        self.drift = float(drift)
        self.threshold = float(threshold)
        self._anchors: Dict[str, _SeriesAnchor] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._anchors)

    @property
    def hit_rate(self) -> float:
        """Fraction of scan decisions answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def should_scan(self, series: TimeSeries, now: float) -> bool:
        """Whether the full windowed detector must run for ``series``.

        Folds any newly appended points into the series' screen (O(n))
        either way; a ``False`` return is a cache hit — the previous
        "no candidate" outcome still stands.
        """
        anchor = self._anchors.get(series.name)
        if anchor is None:
            self.misses += 1
            return True
        n = len(series)
        if (
            n < anchor.anchor_len
            or anchor.anchor_len == 0
            or series.timestamp_at(anchor.anchor_len - 1) != anchor.anchor_end
        ):
            # History was rewritten under the anchor (retention, backfill,
            # or a restore): the screen's reference is no longer valid.
            self.invalidations += 1
            del self._anchors[series.name]
            self.misses += 1
            return True
        new_values = series.tail_values(anchor.anchor_len)
        if new_values.size:
            anchor.screen.update_many(new_values)
            anchor.anchor_len = n
            anchor.anchor_end = series.timestamp_at(n - 1)
        if (
            anchor.had_candidate
            or anchor.screen.fired
            or (now - anchor.full_scan_at) >= self.max_staleness
        ):
            self.misses += 1
            return True
        self.hits += 1
        return False

    def record_full_scan(
        self,
        series: TimeSeries,
        now: float,
        analysis_values: Sequence[float],
        had_candidate: bool,
    ) -> None:
        """Re-anchor ``series`` after a full scan at reference ``now``.

        ``analysis_values`` must be in the series' raw value domain (no
        metric orientation applied): :meth:`should_scan` folds raw tail
        values into the screen, and the two-sided CUSUM catches shifts
        in either direction anyway.
        """
        if len(series) == 0:
            return
        self._anchors[series.name] = _SeriesAnchor(
            anchor_end=series.timestamp_at(-1),
            anchor_len=len(series),
            full_scan_at=now,
            had_candidate=had_candidate,
            screen=StreamingCusum.from_reference(
                analysis_values, drift=self.drift, threshold=self.threshold
            ),
        )

    def forget(self, name: str) -> None:
        """Drop one series' anchor (e.g. the series was deleted)."""
        self._anchors.pop(name, None)

    def clear(self) -> None:
        """Drop every anchor (restore path: derived state is rebuilt)."""
        if self._anchors:
            self.invalidations += len(self._anchors)
        self._anchors.clear()

    def counters(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "anchors": len(self._anchors),
        }
