"""Incremental detector state: the per-series scan cache.

At production scale FBDetect re-scans ~800k subroutine series every
cycle; most of them are quiet most of the time, yet the offline
CUSUM+EM+LRT detector pays O(W) per series per scan regardless.  This
module makes repeat scans cheap: a per-series
:class:`~repro.stats.incremental.StreamingCusum` screen is anchored on
the analysis window whenever a full scan runs, and subsequent scans fold
in only the points that arrived since — O(n) for n new points.  The full
detector re-runs only when something could plausibly have changed:

- the screen fired (evidence of a mean shift in the new points),
- the previous full scan produced a change-point candidate (its
  lifecycle — merger suppression, went-away — needs the full pipeline),
- the window drifted a full analysis span past the anchor (bounds the
  approximation: a skip is only ever based on a window that still
  overlaps the anchored one),
- or the series stopped being append-only (backfill, retention, or a
  restore rewrote history), which invalidates the anchor outright.

The cache is deliberately conservative: the screen is tuned to fire on
smaller shifts than the offline detector reports, so a skipped scan is
one the full pipeline would almost surely have scored "no candidate".

Storage layout: anchors live in a struct-of-arrays — one row per series
across parallel numpy columns (anchor bounds, reference moments, screen
evidence), indexed by a name→row dict.  :meth:`screen_batch` is the
shard-advance hot path: the only per-series Python work is the row
lookup, the append-only validation, and collecting the tail view; the
screen fold, state writeback, scan decisions, and counters are all whole-
batch array ops.  Screening thousands of series costs a handful of
``(k, n)`` kernels instead of ~10 interpreter operations per series.

Checkpoint semantics: the cache pickles with its pipeline so the
parallel executor can round-trip shard state without losing it (columns
are compacted to the live rows), but a *restore* is a trust boundary —
restored services must call :meth:`IncrementalScanCache.clear` (via
``DetectionPipeline.invalidate_incremental``) so stale anchors can never
suppress a re-scan over replayed or repaired history.  Checkpoints
written by the older object-per-series layout load transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.incremental import StreamingCusum, cusum_screen_batch
from repro.tsdb.series import TimeSeries

__all__ = ["IncrementalScanCache"]

_MIN_ROWS = 8


@dataclass
class _SeriesAnchor:
    """Legacy per-series anchor object.

    Kept only so checkpoints written before the struct-of-arrays layout
    still unpickle; :meth:`IncrementalScanCache.__setstate__` converts
    them into column rows on load.
    """

    anchor_end: float
    anchor_len: int
    full_scan_at: float
    had_candidate: bool
    screen: StreamingCusum


class IncrementalScanCache:
    """Decides, per series, whether a full windowed scan is needed.

    Args:
        max_staleness: Seconds of reference-time drift after which a
            full scan is forced even with a quiet screen.  Callers pass
            the analysis-window duration so a skip is always based on a
            window overlapping the anchored one.
        drift: Screen allowance (see :class:`StreamingCusum`).
        threshold: Screen decision interval (see :class:`StreamingCusum`).

    Plain-attribute state only (dict, list, numpy arrays): pickles
    inside shard checkpoints and across process-pool boundaries.
    """

    # One entry per column of the struct-of-arrays anchor store.  Order
    # matters only for _remove/_grow loops, which treat them uniformly.
    _COLUMNS = (
        "_c_anchor_end",
        "_c_anchor_len",
        "_c_full_scan_at",
        "_c_had_candidate",
        "_c_mean",
        "_c_std",
        "_c_pos",
        "_c_neg",
        "_c_fired",
        "_c_n",
    )

    def __init__(
        self,
        max_staleness: float,
        drift: float = 0.75,
        threshold: float = 6.0,
    ) -> None:
        if max_staleness <= 0:
            raise ValueError("max_staleness must be positive")
        self.max_staleness = float(max_staleness)
        self.drift = float(drift)
        self.threshold = float(threshold)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._rows: Dict[str, int] = {}
        self._names: List[str] = []
        self._size = 0
        self._alloc(_MIN_ROWS)

    def _alloc(self, capacity: int) -> None:
        """Allocate fresh columns with room for ``capacity`` rows."""
        self._c_anchor_end = np.zeros(capacity)
        self._c_anchor_len = np.zeros(capacity, dtype=np.int64)
        self._c_full_scan_at = np.zeros(capacity)
        self._c_had_candidate = np.zeros(capacity, dtype=bool)
        self._c_mean = np.zeros(capacity)
        self._c_std = np.zeros(capacity)
        self._c_pos = np.zeros(capacity)
        self._c_neg = np.zeros(capacity)
        self._c_fired = np.zeros(capacity, dtype=bool)
        self._c_n = np.zeros(capacity, dtype=np.int64)

    def _grow(self) -> None:
        """Double capacity (amortized O(1) row appends, like FloatColumn)."""
        live = {name: getattr(self, name)[: self._size] for name in self._COLUMNS}
        self._alloc(max(_MIN_ROWS, 2 * self._size))
        for name, column in live.items():
            getattr(self, name)[: self._size] = column

    def _remove(self, name: str) -> None:
        """Drop one row, filling the hole with the last row (order-free)."""
        row = self._rows.pop(name, None)
        if row is None:
            return
        last = self._size - 1
        if row != last:
            moved = self._names[last]
            for col in self._COLUMNS:
                column = getattr(self, col)
                column[row] = column[last]
            self._names[row] = moved
            self._rows[moved] = row
        self._names.pop()
        self._size = last

    def __len__(self) -> int:
        return self._size

    @property
    def hit_rate(self) -> float:
        """Fraction of scan decisions answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def should_scan(self, series: TimeSeries, now: float) -> bool:
        """Whether the full windowed detector must run for ``series``.

        Folds any newly appended points into the series' screen (O(n))
        either way; a ``False`` return is a cache hit — the previous
        "no candidate" outcome still stands.  One-series view of
        :meth:`screen_batch`, so a series screened alone or inside a
        batch reaches the same decision with the same counter updates.
        """
        return self.screen_batch([series], now)[series.name]

    def screen_batch(
        self, series_list: Sequence[TimeSeries], now: float
    ) -> Dict[str, bool]:
        """Batch :meth:`should_scan` over many series at once.

        This is the shard-advance hot path.  The per-series screens are
        stacked into ``(k, n)`` matrices (grouped by new-point count —
        fleet cadence means most series gained the same number of
        points since the last scan) and advanced with one vectorized
        :func:`~repro.stats.incremental.cusum_screen_batch` call per
        group; screen-state writeback, scan decisions, and the
        hit/miss/invalidation counters are whole-batch array ops on the
        column store.  Decisions and counters are identical to calling
        :meth:`should_scan` in sequence.  Series names must be unique
        within one batch (the TSDB guarantees this).

        Returns:
            ``{series.name: must_scan}`` for every series passed in.
        """
        decisions: Dict[str, bool] = {}
        rows_map = self._rows
        c_anchor_len = self._c_anchor_len
        c_anchor_end = self._c_anchor_end
        c_fired = self._c_fired
        c_n = self._c_n
        if len(series_list) > 64 and self._size:
            # Large batch: one bulk tolist() per hot column turns the
            # per-series scalar reads below into plain list indexing
            # (several numpy scalar boxings cheaper per series).  The
            # snapshots are read-only — each series appears at most once
            # per batch, so they can never be read after a write.
            r_anchor_len = c_anchor_len[: self._size].tolist()
            r_anchor_end = c_anchor_end[: self._size].tolist()
            r_fired = c_fired[: self._size].tolist()
        else:
            r_anchor_len, r_anchor_end, r_fired = c_anchor_len, c_anchor_end, c_fired
        misses = 0
        invalidations = 0
        invalidated: List[str] = []
        # Rows whose screen needed no matrix fold (no new points, or
        # already latched): decided together in one vectorized pass.
        settled_names: List[str] = []
        settled_rows: List[int] = []
        # width -> (names, rows, tail views, new end stamps); the new
        # anchor length per row is just anchor_len + width, so it needs
        # no per-series collection.
        groups: Dict[
            int,
            Tuple[List[str], List[int], List[np.ndarray], List[float]],
        ] = {}
        # Nearly every series in a fleet gains the same number of points
        # between advances, so the active group is cached across loop
        # iterations instead of re-fetched per series.
        open_width = -1
        g_names = g_rows = g_tails = g_ends = None

        for series in series_list:
            name = series.name
            row = rows_map.get(name)
            if row is None:
                misses += 1
                decisions[name] = True
                continue
            # Hot path: reach straight into the columnar buffers — one
            # attribute read instead of a method call per field, at
            # thousands of series per advance.
            ts = series._timestamps
            buf = ts._buffer
            n = ts._length
            anchor_len = r_anchor_len[row]
            if (
                n < anchor_len
                or anchor_len == 0
                or buf[anchor_len - 1] != r_anchor_end[row]
            ):
                # History was rewritten under the anchor (retention,
                # backfill, or a restore): the screen's reference is no
                # longer valid.  Removal is deferred so row indices
                # collected above stay stable for the whole batch.
                invalidations += 1
                misses += 1
                invalidated.append(name)
                decisions[name] = True
                continue
            if n > anchor_len:
                if r_fired[row]:
                    # Latched screen: the scalar fold consumes a single
                    # point and stays fired; no matrix work needed.
                    c_n[row] += 1
                    c_anchor_len[row] = n
                    c_anchor_end[row] = buf[n - 1]
                    settled_names.append(name)
                    settled_rows.append(row)
                else:
                    width = int(n - anchor_len)
                    if width != open_width:
                        group = groups.get(width)
                        if group is None:
                            group = groups[width] = ([], [], [], [])
                        g_names, g_rows, g_tails, g_ends = group
                        open_width = width
                    g_names.append(name)
                    g_rows.append(row)
                    g_tails.append(series._values._buffer[anchor_len:n])
                    g_ends.append(buf[n - 1])
            else:
                settled_names.append(name)
                settled_rows.append(row)

        hits = 0
        for width, (g_names, g_rows, g_tails, g_ends) in groups.items():
            idx = np.fromiter(g_rows, dtype=np.intp, count=len(g_rows))
            # concatenate + reshape beats np.stack here: same (k, n)
            # matrix without a per-row expand_dims wrapper, and every
            # row in a group has the same width by construction.
            pos_out, neg_out, fired_at = cusum_screen_batch(
                np.concatenate(g_tails).reshape(len(g_rows), width),
                self._c_mean[idx],
                self._c_std[idx],
                self._c_pos[idx],
                self._c_neg[idx],
                self.drift,
                self.threshold,
            )
            fired_rows = fired_at >= 0
            self._c_pos[idx] = pos_out
            self._c_neg[idx] = neg_out
            c_fired[idx] = fired_rows
            # n counts through the firing point and freezes consumption
            # there, matching StreamingCusum.apply_batch_result.
            c_n[idx] += np.where(fired_rows, fired_at + 1, width)
            c_anchor_len[idx] += width
            c_anchor_end[idx] = g_ends
            must = (
                self._c_had_candidate[idx]
                | fired_rows
                | ((now - self._c_full_scan_at[idx]) >= self.max_staleness)
            )
            forced = int(np.count_nonzero(must))
            misses += forced
            hits += len(g_rows) - forced
            decisions.update(zip(g_names, must.tolist()))

        if settled_rows:
            idx = np.fromiter(settled_rows, dtype=np.intp, count=len(settled_rows))
            must = (
                self._c_had_candidate[idx]
                | c_fired[idx]
                | ((now - self._c_full_scan_at[idx]) >= self.max_staleness)
            )
            forced = int(np.count_nonzero(must))
            misses += forced
            hits += len(settled_rows) - forced
            decisions.update(zip(settled_names, must.tolist()))

        self.hits += hits
        self.misses += misses
        self.invalidations += invalidations
        for name in invalidated:
            self._remove(name)
        return decisions

    def record_full_scan(
        self,
        series: TimeSeries,
        now: float,
        analysis_values: Sequence[float],
        had_candidate: bool,
    ) -> None:
        """Re-anchor ``series`` after a full scan at reference ``now``.

        ``analysis_values`` must be in the series' raw value domain (no
        metric orientation applied): :meth:`should_scan` folds raw tail
        values into the screen, and the two-sided CUSUM catches shifts
        in either direction anyway.
        """
        if len(series) == 0:
            return
        x = np.asarray(analysis_values, dtype=float)
        row = self._rows.get(series.name)
        if row is None:
            if self._size == len(self._c_anchor_end):
                self._grow()
            row = self._size
            self._size += 1
            self._rows[series.name] = row
            self._names.append(series.name)
        self._c_anchor_end[row] = series.timestamp_at(-1)
        self._c_anchor_len[row] = len(series)
        self._c_full_scan_at[row] = now
        self._c_had_candidate[row] = bool(had_candidate)
        # Same reference moments as StreamingCusum.from_reference.
        self._c_mean[row] = x.mean() if x.size else 0.0
        self._c_std[row] = x.std() if x.size else 0.0
        self._c_pos[row] = 0.0
        self._c_neg[row] = 0.0
        self._c_fired[row] = False
        self._c_n[row] = 0

    def screen_state(self, name: str) -> Optional[Dict[str, float]]:
        """One series' anchor + screen state as a plain dict, or None.

        Debug/bench surface: exposes a column-store row without leaking
        the storage layout.
        """
        row = self._rows.get(name)
        if row is None:
            return None
        return {
            "anchor_end": float(self._c_anchor_end[row]),
            "anchor_len": int(self._c_anchor_len[row]),
            "full_scan_at": float(self._c_full_scan_at[row]),
            "had_candidate": bool(self._c_had_candidate[row]),
            "mean": float(self._c_mean[row]),
            "std": float(self._c_std[row]),
            "pos": float(self._c_pos[row]),
            "neg": float(self._c_neg[row]),
            "fired": bool(self._c_fired[row]),
            "n": int(self._c_n[row]),
        }

    def forget(self, name: str) -> None:
        """Drop one series' anchor (e.g. the series was deleted)."""
        self._remove(name)

    def clear(self) -> None:
        """Drop every anchor (restore path: derived state is rebuilt)."""
        if self._size:
            self.invalidations += self._size
        self._rows.clear()
        self._names.clear()
        self._size = 0

    def counters(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "anchors": self._size,
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle support: columns compact to the live prefix."""
        return {
            "max_staleness": self.max_staleness,
            "drift": self.drift,
            "threshold": self.threshold,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "names": list(self._names),
            "columns": {
                col: getattr(self, col)[: self._size].copy()
                for col in self._COLUMNS
            },
        }

    def __setstate__(self, state: dict) -> None:
        self.max_staleness = state["max_staleness"]
        self.drift = state["drift"]
        self.threshold = state["threshold"]
        self.hits = state.get("hits", 0)
        self.misses = state.get("misses", 0)
        self.invalidations = state.get("invalidations", 0)
        self._rows = {}
        self._names = []
        self._size = 0
        if "_anchors" in state:
            # Checkpoint from the pre-columnar layout: one Python object
            # per series.  Adopt each into a column row.
            anchors = state["_anchors"]
            self._alloc(max(_MIN_ROWS, len(anchors)))
            for name, anchor in anchors.items():
                self._adopt_legacy(name, anchor)
            return
        names = state["names"]
        columns = state["columns"]
        size = len(names)
        self._alloc(max(_MIN_ROWS, size))
        for col in self._COLUMNS:
            getattr(self, col)[:size] = columns[col]
        self._names = list(names)
        self._rows = {name: row for row, name in enumerate(names)}
        self._size = size

    def _adopt_legacy(self, name: str, anchor: _SeriesAnchor) -> None:
        row = self._size
        self._size += 1
        self._rows[name] = row
        self._names.append(name)
        screen = anchor.screen
        self._c_anchor_end[row] = anchor.anchor_end
        self._c_anchor_len[row] = anchor.anchor_len
        self._c_full_scan_at[row] = anchor.full_scan_at
        self._c_had_candidate[row] = anchor.had_candidate
        self._c_mean[row] = screen.mean
        self._c_std[row] = screen.std
        self._c_pos[row] = screen.pos
        self._c_neg[row] = screen.neg
        self._c_fired[row] = screen.fired
        self._c_n[row] = screen.n
