"""Seasonality detector (§5.2.3).

Removes seasonality and re-checks whether a regression persists: if the
regression disappears once the seasonal component is subtracted, it was a
false positive caused by seasonality.

Procedure: detect seasonality presence via the autocorrelation function;
if present, STL-decompose, drop the seasonal part, and compute a pseudo
z-score of the mean shift of (trend + residual) around the change point,
normalized by the residual's standard deviation.  The z-score must clear
the threshold in both the analysis window and the extended window for the
regression to stand.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.change_point import ChangePointCandidate
from repro.core.types import DetectionVerdict, FilterReason
from repro.stats.autocorrelation import detect_season_length
from repro.stats.stl import stl_decompose
from repro.tsdb.windows import WindowedView

__all__ = ["SeasonalityDetector"]


class SeasonalityDetector:
    """STL-based seasonality false-positive filter.

    Args:
        z_threshold: Minimum pseudo z-score for the deseasonalized shift
            to count as a real regression.
        min_period: Smallest season length considered.
        known_period: Optional externally known season length (e.g. one
            day in samples); skips ACF-based detection when provided.
    """

    def __init__(
        self,
        z_threshold: float = 2.0,
        min_period: int = 4,
        known_period: Optional[int] = None,
    ) -> None:
        self.z_threshold = z_threshold
        self.min_period = min_period
        self.known_period = known_period

    def check(
        self,
        view: WindowedView,
        candidate: ChangePointCandidate,
    ) -> DetectionVerdict:
        """Keep the regression unless deseasonalizing makes it vanish."""
        full = view.full
        period = self.known_period or detect_season_length(
            full, min_period=self.min_period
        )
        if period is None or full.size < 2 * period:
            return DetectionVerdict.keep(detail="no significant seasonality")

        # Change-point position within the full (historic+analysis+extended)
        # series: historic points precede the analysis window.
        change_full = view.historic.size + candidate.index

        z_analysis = self._zscore(
            full[: view.historic.size + view.analysis.size], change_full, period
        )
        if z_analysis is not None and z_analysis < self.z_threshold:
            return DetectionVerdict.drop(
                FilterReason.SEASONALITY,
                detail=f"analysis-window z-score {z_analysis:.2f} < {self.z_threshold}",
            )
        if view.extended.size > 0:
            z_extended = self._zscore(full, change_full, period)
            if z_extended is not None and z_extended < self.z_threshold:
                return DetectionVerdict.drop(
                    FilterReason.SEASONALITY,
                    detail=f"extended-window z-score {z_extended:.2f} < {self.z_threshold}",
                )
        detail = f"deseasonalized z-score >= {self.z_threshold} (period={period})"
        return DetectionVerdict.keep(detail=detail)

    def _zscore(self, series: np.ndarray, changepoint: int, period: int) -> Optional[float]:
        """Pseudo z-score of the deseasonalized shift around ``changepoint``.

        ``(median(after) - median(before)) / std(residual)`` where before
        and after are the deseasonalized (trend + residual) segments.
        Returns ``None`` when the decomposition or split is infeasible.
        """
        if series.size < 2 * period or not 0 < changepoint < series.size:
            return None
        try:
            decomposition = stl_decompose(series, period)
        except ValueError:
            return None
        clean = decomposition.deseasonalized
        before, after = clean[:changepoint], clean[changepoint:]
        if before.size == 0 or after.size == 0:
            return None
        residual_std = float(decomposition.residual.std())
        if residual_std <= 0:
            return None
        shift = float(np.median(after) - np.median(before))
        return shift / residual_std
