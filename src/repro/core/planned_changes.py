"""Planned-change correlation (the paper's §8 future work).

"Planned capacity changes also trigger false positives, so we plan to
correlate regressions with these known changes."  This module implements
that extension: operators register :class:`PlannedChange` records
(capacity reductions, traffic migrations, experiment ramps) with a time
window and a scope; a regression whose change point falls inside a
matching planned window — and whose magnitude is within the change's
declared impact — is suppressed as expected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.types import DetectionVerdict, FilterReason, Regression

__all__ = ["PlannedChange", "PlannedChangeCorrelator"]


@dataclass(frozen=True)
class PlannedChange:
    """A known, intentional change that will move metrics.

    Attributes:
        change_id: Identifier (maintenance ticket, experiment name).
        start: When its impact begins.
        end: When its impact is expected to end (``inf`` for permanent
            changes like a capacity reduction).
        description: Operator-facing context.
        services: Services affected; empty means all.
        metrics: Metric types affected (``"cpu"``, ``"throughput"`` ...);
            empty means all.
        expected_relative_impact: Largest relative metric shift this
            change is expected to cause.  Regressions exceeding it are
            NOT suppressed — a planned change is no excuse for a larger-
            than-planned regression.
    """

    change_id: str
    start: float
    end: float = float("inf")
    description: str = ""
    services: frozenset = frozenset()
    metrics: frozenset = frozenset()
    expected_relative_impact: float = float("inf")

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("end must be >= start")
        if not isinstance(self.services, frozenset):
            object.__setattr__(self, "services", frozenset(self.services))
        if not isinstance(self.metrics, frozenset):
            object.__setattr__(self, "metrics", frozenset(self.metrics))

    def covers(self, regression: Regression, slack: float) -> bool:
        """Whether this planned change plausibly explains ``regression``."""
        if not self.start - slack <= regression.change_time <= self.end + slack:
            return False
        if self.services and regression.context.service not in self.services:
            return False
        if self.metrics and regression.context.metric_name not in self.metrics:
            return False
        relative = abs(regression.relative_magnitude)
        return relative <= self.expected_relative_impact


class PlannedChangeCorrelator:
    """Suppresses regressions explained by registered planned changes.

    Args:
        planned: Initially registered changes.
        time_slack: Tolerance (seconds) around a change's window when
            matching regression change points — deploys rarely land at
            the exact planned instant.
    """

    def __init__(
        self,
        planned: Sequence[PlannedChange] = (),
        time_slack: float = 1800.0,
    ) -> None:
        if time_slack < 0:
            raise ValueError("time_slack must be >= 0")
        self._planned: List[PlannedChange] = list(planned)
        self.time_slack = time_slack

    def register(self, change: PlannedChange) -> None:
        """Register a planned change."""
        self._planned.append(change)

    def withdraw(self, change_id: str) -> bool:
        """Remove a planned change by id; returns whether it existed."""
        before = len(self._planned)
        self._planned = [c for c in self._planned if c.change_id != change_id]
        return len(self._planned) < before

    def planned(self) -> List[PlannedChange]:
        """Registered changes, ordered by start time."""
        return sorted(self._planned, key=lambda c: c.start)

    def check(self, regression: Regression) -> DetectionVerdict:
        """Keep the regression unless a planned change explains it."""
        for change in self._planned:
            if change.covers(regression, self.time_slack):
                return DetectionVerdict.drop(
                    FilterReason.PLANNED_CHANGE,
                    detail=(
                        f"explained by planned change {change.change_id}"
                        + (f" ({change.description})" if change.description else "")
                    ),
                )
        return DetectionVerdict.keep(detail="no matching planned change")
