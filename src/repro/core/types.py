"""Shared types of the detection pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tsdb.windows import WindowedView

__all__ = [
    "RegressionKind",
    "FilterReason",
    "DetectionVerdict",
    "MetricContext",
    "Regression",
    "RegressionGroup",
]


class RegressionKind(str, enum.Enum):
    """Which detection path produced a regression."""

    SHORT_TERM = "short_term"
    LONG_TERM = "long_term"


class FilterReason(str, enum.Enum):
    """Why a candidate was filtered as a false positive (Table 3 stages)."""

    NOT_SIGNIFICANT = "not_significant"
    WENT_AWAY = "went_away"
    SEASONALITY = "seasonality"
    BELOW_THRESHOLD = "below_threshold"
    SAME_REGRESSION = "same_regression"
    SOM_DUPLICATE = "som_duplicate"
    COST_SHIFT = "cost_shift"
    PAIRWISE_DUPLICATE = "pairwise_duplicate"
    PLANNED_CHANGE = "planned_change"


@dataclass(frozen=True)
class DetectionVerdict:
    """Outcome of one filter stage for one candidate.

    Attributes:
        passed: ``True`` when the candidate survives the stage.
        reason: The filter reason when it does not.
        detail: Free-form diagnostics for the incident report.
    """

    passed: bool
    reason: Optional[FilterReason] = None
    detail: str = ""

    @classmethod
    def keep(cls, detail: str = "") -> "DetectionVerdict":
        return cls(passed=True, detail=detail)

    @classmethod
    def drop(cls, reason: FilterReason, detail: str = "") -> "DetectionVerdict":
        return cls(passed=False, reason=reason, detail=detail)


@dataclass(frozen=True)
class MetricContext:
    """Identity and metadata of the series under analysis.

    Attributes:
        metric_id: Concatenation of subroutine name and metric name — the
            SOMDedup clustering feature of §5.5.1 (e.g.
            ``"svc::Ranker::score.gcpu"``).
        service: Owning service.
        metric_name: Metric type (``"gcpu"``, ``"throughput"`` ...).
        subroutine: Subroutine for subroutine-level metrics.
        endpoint: Endpoint for endpoint-level metrics.
        metadata: ``SetFrameMetadata`` annotation, if any.
    """

    metric_id: str
    service: str = ""
    metric_name: str = ""
    subroutine: Optional[str] = None
    endpoint: Optional[str] = None
    metadata: Optional[str] = None

    @classmethod
    def from_tags(cls, name: str, tags: Dict[str, str]) -> "MetricContext":
        """Build a context from a TSDB series name and tags."""
        return cls(
            metric_id=name,
            service=tags.get("service", ""),
            metric_name=tags.get("metric", ""),
            subroutine=tags.get("subroutine"),
            endpoint=tags.get("endpoint"),
            metadata=tags.get("metadata"),
        )


@dataclass
class Regression:
    """A detected (candidate) regression.

    Attributes:
        context: Which metric regressed.
        kind: Short- or long-term detection path.
        change_index: Index of the change point within the analysis
            window (short-term) or the full deseasonalized series
            (long-term).
        change_time: Simulation/wall time of the change point.
        mean_before: Baseline mean.
        mean_after: Post-change mean.
        window: The windowed view the detection ran on.
        detected_at: The pipeline run's reference time ("now").
        verdicts: Filter-stage audit trail.
        features: Numeric features attached by dedup stages.
        group_id: Deduplication group, set by SOMDedup/PairwiseDedup.
        representative: Whether this regression represents its group.
        root_cause_candidates: Ranked candidate change ids with scores,
            filled by root-cause analysis.
    """

    context: MetricContext
    kind: RegressionKind
    change_index: int
    change_time: float
    mean_before: float
    mean_after: float
    window: WindowedView
    detected_at: float = 0.0
    verdicts: List[DetectionVerdict] = field(default_factory=list)
    features: Dict[str, float] = field(default_factory=dict)
    group_id: Optional[int] = None
    representative: bool = True
    root_cause_candidates: List["RootCauseScore"] = field(default_factory=list)

    @property
    def magnitude(self) -> float:
        """Absolute regression magnitude (mean shift)."""
        return self.mean_after - self.mean_before

    @property
    def relative_magnitude(self) -> float:
        """Magnitude relative to the baseline mean (inf when baseline 0)."""
        if self.mean_before == 0:
            return float("inf") if self.magnitude != 0 else 0.0
        return self.magnitude / abs(self.mean_before)

    @property
    def post_change(self) -> np.ndarray:
        """Analysis-window values after the change point."""
        return self.window.analysis[self.change_index :]

    @property
    def pre_change(self) -> np.ndarray:
        """Historic baseline plus pre-change analysis values."""
        return np.concatenate(
            [self.window.historic, self.window.analysis[: self.change_index]]
        )

    def record(self, verdict: DetectionVerdict) -> None:
        self.verdicts.append(verdict)

    def series_mapping(self) -> Dict[float, float]:
        """Approximate ``{time: value}`` of analysis+extended values.

        Times are reconstructed on a uniform grid over the analysis and
        extended windows — sufficient for the correlation features that
        consume this.
        """
        values = self.window.analysis_and_extended
        if values.size == 0:
            return {}
        start = self.window.analysis_start
        end = self.window.now
        times = np.linspace(start, end, values.size, endpoint=False)
        return {float(t): float(v) for t, v in zip(times, values)}


@dataclass(frozen=True)
class RootCauseScore:
    """One ranked root-cause candidate.

    Attributes:
        change_id: The candidate change.
        score: Combined relevance in [0, 1].
        factors: Per-factor breakdown (gcpu_attribution, text_similarity,
            time_correlation).
    """

    change_id: str
    score: float
    factors: Dict[str, float] = field(default_factory=dict)


@dataclass
class RegressionGroup:
    """A deduplicated group of regressions sharing a likely root cause.

    Attributes:
        group_id: Stable id.
        members: All regressions merged into the group.
        representative: The member shown to developers (highest
            ImportanceScore).
    """

    group_id: int
    members: List[Regression] = field(default_factory=list)
    representative: Optional[Regression] = None

    def add(self, regression: Regression) -> None:
        regression.group_id = self.group_id
        self.members.append(regression)
