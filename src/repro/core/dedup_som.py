"""SOMDedup: fast first-pass regression deduplication (§5.5.1).

A single change often regresses many metrics at once (every upstream
caller of a regressed subroutine, for instance).  SOMDedup clusters
same-typed metrics within one analysis window using a Self-Organizing
Map — O(n) versus pairwise O(n^2) — on features combining classic
time-series descriptors (Fourier frequencies, variance, change point)
with FBDetect's domain-specific ones:

- *candidate root causes*: a bitmap over recent changes that modify the
  regressed subroutine right before the regression starts;
- *metric ID*: subroutine+metric name, converted to a number via
  2-/3-gram TF-IDF.

Within each cluster, the regression with the highest ImportanceScore is
presented as the representative.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.importance import ImportanceWeights, importance_score
from repro.core.types import DetectionVerdict, FilterReason, Regression, RegressionGroup
from repro.fleet.changes import ChangeLog
from repro.profiling.stacktrace import StackTrace
from repro.som import som_cluster
from repro.text.tfidf import NgramTfidfVectorizer

__all__ = ["SOMDedup"]

#: Number of leading Fourier magnitudes used as features.
_N_FOURIER = 3
#: Width of the root-cause bitmap projection.
_BITMAP_BUCKETS = 4


class SOMDedup:
    """SOM-based deduplication of same-window, same-type regressions.

    Args:
        change_log: Change log for the root-cause-bitmap feature.
        samples: Stack-trace history for ImportanceScore's popularity.
        weights: ImportanceScore weights.
        lookback: How far before the change point (seconds) to search for
            candidate root-cause changes.
        seed: SOM training seed.
    """

    def __init__(
        self,
        change_log: Optional[ChangeLog] = None,
        samples: Sequence[StackTrace] = (),
        weights: ImportanceWeights = ImportanceWeights(),
        lookback: float = 6 * 3600.0,
        seed: int = 0,
    ) -> None:
        self.change_log = change_log
        self.samples = samples
        self.weights = weights
        self.lookback = lookback
        self.seed = seed
        self._next_group_id = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def deduplicate(self, regressions: Sequence[Regression]) -> List[RegressionGroup]:
        """Cluster ``regressions`` and elect representatives.

        Non-representative members receive a SOM_DUPLICATE verdict;
        representatives a keep verdict.  Clustering runs separately per
        metric type ("metrics of the same type ... within the same
        analysis window").

        Returns:
            One :class:`RegressionGroup` per cluster.
        """
        groups: List[RegressionGroup] = []
        by_type: Dict[str, List[Regression]] = {}
        for regression in regressions:
            by_type.setdefault(regression.context.metric_name, []).append(regression)

        for metric_type in sorted(by_type):
            groups.extend(self._dedup_one_type(by_type[metric_type]))
        return groups

    def _dedup_one_type(self, regressions: List[Regression]) -> List[RegressionGroup]:
        if not regressions:
            return []
        features = self._feature_matrix(regressions)
        clusters = som_cluster(features, seed=self.seed)

        groups = []
        for member_indices in clusters:
            group = RegressionGroup(group_id=self._next_group_id)
            self._next_group_id += 1
            members = [regressions[i] for i in member_indices]
            scored = [
                (importance_score(m, self.samples, self.weights), i, m)
                for i, m in enumerate(members)
            ]
            scored.sort(key=lambda item: (-item[0], item[1]))
            for rank, (_, _, member) in enumerate(scored):
                group.add(member)
                member.representative = rank == 0
                if rank == 0:
                    group.representative = member
                    member.record(DetectionVerdict.keep(detail="SOMDedup representative"))
                else:
                    member.record(
                        DetectionVerdict.drop(
                            FilterReason.SOM_DUPLICATE,
                            detail=f"duplicate of {group.representative.context.metric_id}",
                        )
                    )
            groups.append(group)
        return groups

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------

    def _feature_matrix(self, regressions: List[Regression]) -> np.ndarray:
        vectorizer = NgramTfidfVectorizer().fit(
            [r.context.metric_id for r in regressions]
        )
        rows = [self._features_for(r, vectorizer) for r in regressions]
        return np.asarray(rows, dtype=float)

    def _features_for(
        self, regression: Regression, vectorizer: NgramTfidfVectorizer
    ) -> List[float]:
        series = regression.window.analysis
        fourier = self._fourier_features(series)
        variance = float(series.var()) if series.size else 0.0
        change_position = (
            regression.change_index / series.size if series.size else 0.0
        )
        bitmap = self._root_cause_bitmap(regression)
        metric_feature = vectorizer.metric_id_feature(regression.context.metric_id)

        features = list(fourier)
        features.append(np.log1p(variance * 1e6))
        features.append(change_position)
        features.append(np.log1p(abs(regression.magnitude) * 1e4))
        features.extend(bitmap)
        features.append(metric_feature)
        regression.features.update(
            {
                "variance": variance,
                "change_position": change_position,
                "metric_id_feature": metric_feature,
            }
        )
        return features

    @staticmethod
    def _fourier_features(series: np.ndarray) -> List[float]:
        """Normalized magnitudes of the leading non-DC Fourier bins."""
        if series.size < 4:
            return [0.0] * _N_FOURIER
        spectrum = np.abs(np.fft.rfft(series - series.mean()))
        spectrum = spectrum[1:]  # drop DC
        if spectrum.size == 0 or spectrum.max() == 0:
            return [0.0] * _N_FOURIER
        spectrum = spectrum / spectrum.max()
        top = np.sort(spectrum)[::-1][:_N_FOURIER]
        padded = np.zeros(_N_FOURIER)
        padded[: top.size] = top
        return list(map(float, padded))

    def _root_cause_bitmap(self, regression: Regression) -> List[float]:
        """Candidate-root-cause bitmap projected into a few buckets.

        Each recent change that modifies the regressed subroutine sets
        the bit ``hash(change_id) % _BITMAP_BUCKETS`` — regressions that
        share candidates land near each other in feature space.
        """
        buckets = [0.0] * _BITMAP_BUCKETS
        if self.change_log is None or regression.context.subroutine is None:
            return buckets
        window_start = regression.change_time - self.lookback
        for change in self.change_log.deployed_between(
            window_start, regression.change_time + 1.0
        ):
            if regression.context.subroutine in change.modified_subroutines:
                stable = zlib.crc32(change.change_id.encode("utf-8"))
                buckets[stable % _BITMAP_BUCKETS] = 1.0
        return buckets
