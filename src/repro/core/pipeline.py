"""The Figure 6 detection pipeline.

One :meth:`DetectionPipeline.run` is one periodic scan: every matching
series in the TSDB is windowed at the reference time and pushed through
the short-term path (change point -> went-away -> seasonality ->
threshold -> SameRegressionMerger) and, when enabled, the long-term path
(STL -> trend regression -> change point -> threshold).  Survivors are
deduplicated by SOMDedup, filtered by cost-shift analysis, deduplicated
again by PairwiseDedup, and finally root-caused.

Per-stage survivor counts are kept in :class:`FunnelCounters`, which
reproduces Table 3's "remaining anomalies after each technique" rows.
When a tracer (:class:`~repro.obs.spans.TraceStore`) is attached, every
run additionally records one :class:`~repro.obs.spans.Span` per stage —
input/output candidate counts, drop reasons, and elapsed time — so the
funnel's attrition is auditable live, not just in aggregate.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import DetectionConfig
from repro.core.change_point import ChangePointDetector
from repro.core.cost_shift import CostShiftDetector
from repro.core.dedup_pairwise import PairwiseDedup
from repro.core.dedup_som import SOMDedup
from repro.core.incremental import IncrementalScanCache
from repro.core.long_term import LongTermDetector
from repro.core.planned_changes import PlannedChangeCorrelator
from repro.core.root_cause import RootCauseAnalyzer
from repro.core.same_regression import SameRegressionMerger
from repro.core.seasonality import SeasonalityDetector
from repro.core.types import (
    DetectionVerdict,
    FilterReason,
    MetricContext,
    Regression,
    RegressionGroup,
    RegressionKind,
)
from repro.core.went_away import WentAwayDetector
from repro.fleet.changes import ChangeLog
from repro.obs.logging import get_logger
from repro.obs.spans import STAGES, RunTrace, StageTally
from repro.profiling.stacktrace import StackTrace
from repro.quality.gaps import QualityGate
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.series import TimeSeries

__all__ = ["STAGES", "FunnelCounters", "PipelineResult", "DetectionPipeline"]

# STAGES (the canonical Table 3 stage order) now lives in
# repro.obs.spans so observability consumers need no detection imports;
# it is re-exported here for compatibility.

_log = get_logger("repro.core.pipeline")


@dataclass
class FunnelCounters:
    """Survivor counts after each pipeline stage (Table 3).

    ``counts[stage]`` is the number of candidates still alive *after*
    the stage ran.  ``counts["change_points"]`` is the number detected.
    """

    counts: Dict[str, int] = field(default_factory=lambda: {s: 0 for s in STAGES})

    def survived(self, stage: str, n: int = 1) -> None:
        """Record ``n`` survivors of ``stage``.

        Raises:
            KeyError: On an unknown stage name.
        """
        if stage not in self.counts:
            raise KeyError(f"unknown stage {stage!r}")
        self.counts[stage] += n

    def reduction_ratios(self) -> Dict[str, float]:
        """Table 3's "1/N" view: detected count over survivors per stage.

        Stages with zero survivors report ``inf``.
        """
        detected = self.counts["change_points"]
        ratios = {}
        for stage in STAGES:
            alive = self.counts[stage]
            ratios[stage] = detected / alive if alive else float("inf")
        return ratios

    def merge(self, other: "FunnelCounters") -> None:
        for stage, count in other.counts.items():
            self.counts[stage] = self.counts.get(stage, 0) + count


@dataclass
class PipelineResult:
    """Outcome of one detection run.

    Attributes:
        reported: Final regressions presented to developers (group
            representatives after all filtering and deduplication).
        all_candidates: Every change-point candidate turned regression
            (including later-filtered ones, each carrying its verdicts).
        groups: PairwiseDedup groups touched this run.
        funnel: Per-stage survivor counts.
        now: The run's reference time.
    """

    reported: List[Regression]
    all_candidates: List[Regression]
    groups: List[RegressionGroup]
    funnel: FunnelCounters
    now: float


class DetectionPipeline:
    """Wires the Figure 6 stages together for one workload configuration.

    Args:
        config: Workload configuration (Table 1 row).
        change_log: Change log for root-cause analysis, SOM features and
            commit cost domains.
        samples: Stack-trace history (cost shift, dedup, root cause).
        series_filter: Optional tag filters selecting which series this
            pipeline scans (e.g. ``{"service": "frontfaas"}``).
        min_historic_points: Data-sufficiency floor for the baseline.
        min_analysis_points: Data-sufficiency floor for the analysis
            window.
        planned_changes: Optional correlator suppressing regressions
            explained by registered planned capacity changes (the
            paper's §8 extension).
        enable_went_away: Ablation switch for the went-away detector.
        enable_seasonality: Ablation switch for the seasonality detector.
        enable_cost_shift: Ablation switch for cost-shift analysis
            (AdServing runs without it, per Table 3).
        enable_som_dedup: Ablation switch for SOMDedup.
        enable_pairwise_dedup: Ablation switch for PairwiseDedup.
        incremental: Enable the per-series incremental scan cache: a
            streaming CUSUM screen anchored at each full scan lets
            repeat scans over quiet series cost O(n) in *new* points
            instead of O(W) in window size (see
            :mod:`repro.core.incremental`).  Off by default so offline
            single-scan analyses (benchmarks, funnel reproduction) stay
            byte-identical; the streaming service turns it on.
        metrics: Optional metrics-registry-like object (must expose
            ``inc(name, n)`` and ``observe(name, value)``, e.g.
            :class:`repro.service.metrics.MetricsRegistry`); receives
            per-stage latency histograms and candidate counters.  Kept
            duck-typed so the core pipeline does not import the service
            layer.
        tracer: Optional trace recorder (must expose ``record(run)``,
            e.g. :class:`repro.obs.spans.TraceStore`).  When set, every
            :meth:`run` emits one :class:`~repro.obs.spans.RunTrace`
            holding one span per funnel stage, with input/output counts
            that telescope on the short-term path and per-stage drop
            reasons.  ``None`` (the default) keeps the scan hot path
            free of tally work.
        quality_gate: Optional :class:`~repro.quality.gaps.QualityGate`
            making detection gap-aware: scan windows whose coverage
            (points present vs the series' own cadence) falls below the
            gate's floor are suppressed instead of scanned — a window
            that is mostly gap fires false positives — and series that
            stopped reporting are evicted from scanning until they
            resume (see :meth:`stale_series`).  ``None`` disables both.
            Independently of the gate, windows containing non-finite
            values are never scanned.
        shadow: Optional shadow scorer (must expose
            ``score(historic, analysis, extended, primary_fired,
            metrics)``, e.g.
            :class:`repro.detectors.shadow.ShadowScorer`); invoked once
            per full short-term scan with the oriented window segments
            and whether the incumbent screen fired.  Shadow scoring is
            alert-inert: it never touches verdicts, funnels, or
            delivery, so the primary report is byte-identical with or
            without it.  Kept duck-typed so the core pipeline does not
            import the detectors layer.
    """

    def __init__(
        self,
        config: DetectionConfig,
        change_log: Optional[ChangeLog] = None,
        samples: Sequence[StackTrace] = (),
        series_filter: Optional[Dict[str, str]] = None,
        min_historic_points: int = 12,
        min_analysis_points: int = 8,
        planned_changes: Optional[PlannedChangeCorrelator] = None,
        enable_went_away: bool = True,
        enable_seasonality: bool = True,
        enable_cost_shift: bool = True,
        enable_som_dedup: bool = True,
        enable_pairwise_dedup: bool = True,
        incremental: bool = False,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
        quality_gate: Optional[QualityGate] = None,
        shadow: Optional[object] = None,
    ) -> None:
        self.config = config
        self.change_log = change_log if change_log is not None else ChangeLog()
        self.samples = list(samples)
        self.series_filter = dict(series_filter or {})
        self.min_historic_points = min_historic_points
        self.min_analysis_points = min_analysis_points
        self.planned_changes = planned_changes
        self.enable_went_away = enable_went_away
        self.enable_seasonality = enable_seasonality
        self.enable_cost_shift = enable_cost_shift
        self.enable_som_dedup = enable_som_dedup
        self.enable_pairwise_dedup = enable_pairwise_dedup
        self.incremental_cache: Optional[IncrementalScanCache] = (
            IncrementalScanCache(max_staleness=config.windows.analysis)
            if incremental
            else None
        )
        self.metrics = metrics
        self.tracer = tracer
        self.quality_gate = quality_gate
        self.shadow = shadow
        # Series currently evicted for staleness; membership is
        # re-evaluated every run, so a series that resumes reporting
        # leaves the set on its next scan.
        self._stale: set = set()

        self.change_point_detector = ChangePointDetector()
        self.went_away_detector = WentAwayDetector()
        self.seasonality_detector = SeasonalityDetector(
            known_period=config.seasonality_period
        )
        self.same_regression_merger = SameRegressionMerger(
            time_tolerance=max(config.rerun_interval, 3600.0)
        )
        self.som_dedup = SOMDedup(change_log=self.change_log, samples=self.samples)
        self.pairwise_dedup = PairwiseDedup(samples=self.samples)
        self.long_term_detector = LongTermDetector(
            threshold=config.threshold if not config.relative_threshold else 0.0,
            known_period=config.seasonality_period,
        )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self, database: TimeSeriesDatabase, now: float) -> PipelineResult:
        """One periodic detection scan at reference time ``now``."""
        run_started = time.perf_counter()
        wall_started = time.time()
        funnel = FunnelCounters()
        candidates: List[Regression] = []
        # One StageTally per funnel stage, frozen into spans at the end
        # of the run.  ``None`` when tracing is off: the per-candidate
        # sites below then skip all tally (and perf_counter) work.
        trace: Optional[Dict[str, StageTally]] = (
            {stage: StageTally() for stage in STAGES}
            if self.tracer is not None
            else None
        )

        stage_started = time.perf_counter()
        # Pass 1: staleness eviction, before any screen state is touched
        # (an evicted series must cost nothing and fold nothing).
        scannable: List[TimeSeries]
        if self.quality_gate is not None:
            scannable = []
            for series in self._matching_series(database):
                if self._evict_if_stale(series, now):
                    # Evicted from scheduling until it resumes: a dead
                    # host must cost nothing per tick and never alert.
                    if trace is not None:
                        trace["change_points"].observe(False, "stale_series")
                    continue
                scannable.append(series)
        else:
            scannable = self._matching_series(database)
        # Pass 2: one vectorized screen over every scannable series —
        # thousands of per-series CUSUM folds become a few array ops.
        decisions = (
            self.incremental_cache.screen_batch(scannable, now)
            if self.incremental_cache is not None
            else None
        )
        # Pass 3: full windowed scans where the screen demanded one.
        for series in scannable:
            candidate = self._short_term(
                series,
                now,
                funnel,
                trace,
                must_scan=None if decisions is None else decisions[series.name],
            )
            if candidate is not None:
                candidates.append(candidate)
            if self.config.long_term:
                long_candidate = self._long_term(series, now, funnel, trace)
                if long_candidate is not None:
                    candidates.append(long_candidate)
        self._observe_stage("detect", stage_started)

        survivors = [c for c in candidates if not c.verdicts or c.verdicts[-1].passed]

        # SOMDedup: representatives continue, duplicates stop here.
        stage_started = time.perf_counter()
        if self.enable_som_dedup:
            groups = self.som_dedup.deduplicate(survivors)
            representatives = [g.representative for g in groups if g.representative]
        else:
            representatives = list(survivors)
        funnel.survived("som_dedup", len(representatives))
        self._observe_stage("som_dedup", stage_started)
        if trace is not None:
            trace["som_dedup"].bulk(
                len(survivors), len(representatives),
                FilterReason.SOM_DUPLICATE.value,
                time.perf_counter() - stage_started,
            )

        # Cost-shift analysis on the surviving representatives.
        stage_started = time.perf_counter()
        if self.enable_cost_shift:
            cost_shift = CostShiftDetector(
                database, samples=self.samples, change_log=self.change_log
            )
            after_cost_shift: List[Regression] = []
            for regression in representatives:
                verdict = cost_shift.check(regression)
                regression.record(verdict)
                if verdict.passed:
                    after_cost_shift.append(regression)
        else:
            after_cost_shift = representatives
        funnel.survived("cost_shift", len(after_cost_shift))
        self._observe_stage("cost_shift", stage_started)
        if trace is not None:
            trace["cost_shift"].bulk(
                len(representatives), len(after_cost_shift),
                FilterReason.COST_SHIFT.value,
                time.perf_counter() - stage_started,
            )

        # PairwiseDedup against groups from prior runs.
        stage_started = time.perf_counter()
        if self.enable_pairwise_dedup:
            touched_groups = self.pairwise_dedup.process(after_cost_shift)
            reported = [
                regression
                for regression in after_cost_shift
                if regression.verdicts and regression.verdicts[-1].passed
            ]
        else:
            touched_groups = []
            reported = after_cost_shift
        funnel.survived("pairwise_dedup", len(reported))
        self._observe_stage("pairwise_dedup", stage_started)
        if trace is not None:
            trace["pairwise_dedup"].bulk(
                len(after_cost_shift), len(reported),
                FilterReason.PAIRWISE_DUPLICATE.value,
                time.perf_counter() - stage_started,
            )

        # Root-cause analysis for what gets reported.
        stage_started = time.perf_counter()
        analyzer = RootCauseAnalyzer(
            self.change_log,
            samples_before=self.samples,
            samples_after=self.samples,
        )
        for regression in reported:
            analyzer.analyze(regression)
        self._observe_stage("root_cause", stage_started)

        run_seconds = time.perf_counter() - run_started
        if self.metrics is not None:
            self.metrics.observe("pipeline.run_seconds", run_seconds)
            self.metrics.inc("pipeline.runs")
            self.metrics.inc("pipeline.candidates", len(candidates))
            self.metrics.inc("pipeline.reported", len(reported))

        if trace is not None:
            self.tracer.record(
                RunTrace(
                    monitor=self.config.name,
                    now=now,
                    wall_started=wall_started,
                    seconds=run_seconds,
                    spans=tuple(trace[stage].freeze(stage) for stage in STAGES),
                )
            )
        if reported and _log.isEnabledFor(logging.INFO):
            for regression in reported:
                _log.info(
                    "regression reported",
                    series=regression.context.metric_id,
                    monitor=self.config.name,
                    magnitude=regression.magnitude,
                    change_time=regression.change_time,
                    detected_at=now,
                )

        return PipelineResult(
            reported=reported,
            all_candidates=candidates,
            groups=touched_groups,
            funnel=funnel,
            now=now,
        )

    def _observe_stage(self, stage: str, started: float) -> None:
        """Record one stage's latency into the optional metrics registry."""
        if self.metrics is not None:
            self.metrics.observe(
                f"pipeline.stage.{stage}_seconds", time.perf_counter() - started
            )

    def invalidate_incremental(self) -> None:
        """Drop all derived incremental-scan state (restore boundary).

        Called when shard state is restored from a checkpoint: anchors
        computed in a previous life must never suppress a re-scan over
        replayed or repaired history.  No-op when the cache is disabled.
        """
        if self.incremental_cache is not None:
            self.incremental_cache.clear()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _matching_series(self, database: TimeSeriesDatabase) -> List[TimeSeries]:
        if self.series_filter:
            return database.query(**self.series_filter)
        return list(database)

    def stale_series(self) -> List[str]:
        """Series currently evicted from scanning for staleness, sorted."""
        return sorted(self._stale)

    def _evict_if_stale(self, series: TimeSeries, now: float) -> bool:
        """Track and report whether ``series`` stopped reporting."""
        last = series.end
        if last is None:
            return False
        if self.quality_gate.is_stale(last, now, self.config.windows.analysis):
            if series.name not in self._stale:
                self._stale.add(series.name)
                if self.metrics is not None:
                    self.metrics.inc("pipeline.quality.stale_evictions")
            if self.metrics is not None:
                self.metrics.inc("pipeline.quality.stale_skips")
            return True
        self._stale.discard(series.name)
        return False

    def _window_ok(
        self,
        series: TimeSeries,
        windowed,
        trace: Optional[Dict[str, StageTally]],
        started: float,
    ) -> bool:
        """Quality guards a scan window must clear.

        Non-finite values anywhere in the window always suppress the
        scan (NaN poisons every downstream statistic); with a quality
        gate attached, windows whose coverage falls below the gate's
        floor are suppressed too.  Suppressions are counted and traced,
        never alerted.
        """
        finite = (
            bool(np.isfinite(windowed.analysis).all())
            and bool(np.isfinite(windowed.historic).all())
            and (windowed.extended.size == 0 or bool(np.isfinite(windowed.extended).all()))
        )
        if not finite:
            if self.metrics is not None:
                self.metrics.inc("pipeline.quality.non_finite_skips")
            if trace is not None:
                trace["change_points"].observe(
                    False, "non_finite_window", time.perf_counter() - started
                )
            return False
        if self.quality_gate is not None:
            ok, _ = self.quality_gate.window_ok(
                series.timestamps_between(
                    windowed.historic_start, windowed.analysis_start
                ),
                int(windowed.analysis.size),
                windowed.analysis_start,
                windowed.extended_start,
            )
            if not ok:
                if self.metrics is not None:
                    self.metrics.inc("pipeline.quality.low_coverage_skips")
                if trace is not None:
                    trace["change_points"].observe(
                        False, "low_quality_window", time.perf_counter() - started
                    )
                return False
        return True

    def _oriented(self, values: np.ndarray) -> np.ndarray:
        """Map values so that an increase always means a regression."""
        return values if self.config.higher_is_worse else -values

    def _short_term(
        self,
        series: TimeSeries,
        now: float,
        funnel: FunnelCounters,
        trace: Optional[Dict[str, StageTally]] = None,
        must_scan: Optional[bool] = None,
    ) -> Optional[Regression]:
        cache = self.incremental_cache
        if cache is not None:
            # ``must_scan`` carries a decision precomputed by the batch
            # screen in :meth:`run`; direct callers leave it ``None`` and
            # the cache is consulted per series instead.
            if must_scan is None:
                must_scan = cache.should_scan(series, now)
            if not must_scan:
                # Cache hit: the screen saw no shift in the new points and
                # the previous full scan found nothing — skip the O(W) path.
                if self.metrics is not None:
                    self.metrics.inc("pipeline.incremental.hits")
                # Tallied untimed: the hit path is O(new points) and the
                # tracer must not dominate it with clock reads.
                if trace is not None:
                    trace["change_points"].observe(False, "cache_hit")
                return None
            # Count the miss at the decision point so the registry agrees
            # with IncrementalScanCache.hit_rate even when the scan below
            # bails on insufficient data.
            if self.metrics is not None:
                self.metrics.inc("pipeline.incremental.misses")
        started = time.perf_counter() if trace is not None else 0.0

        windowed = self.config.windows.view(series, now)
        if not windowed.has_minimum_data(
            self.min_historic_points, self.min_analysis_points
        ):
            if trace is not None:
                trace["change_points"].observe(
                    False, "insufficient_data", time.perf_counter() - started
                )
            return None
        if not self._window_ok(series, windowed, trace, started):
            # No full-scan anchor is recorded: bad windows must not
            # seed the incremental screen.
            return None

        oriented_analysis = self._oriented(windowed.analysis)
        candidate = self.change_point_detector.detect_increase(oriented_analysis)
        if cache is not None:
            # Anchor on the *raw* analysis values: should_scan folds raw
            # tail values into the screen, and the CUSUM is two-sided,
            # so orientation must not be applied here (a sign-flipped
            # reference would fire the screen on every quiet
            # lower-is-worse series).
            cache.record_full_scan(
                series, now, windowed.analysis, candidate is not None
            )
        if self.shadow is not None:
            # Challengers see exactly what the incumbent scanned (same
            # orientation, same segments) on every full scan — fired or
            # quiet — so their tallies measure both FP and FN behavior.
            self.shadow.score(
                self._oriented(windowed.historic),
                oriented_analysis,
                self._oriented(windowed.extended),
                primary_fired=candidate is not None,
                metrics=self.metrics,
            )
        if candidate is None:
            if trace is not None:
                trace["change_points"].observe(
                    False, "no_change_point", time.perf_counter() - started
                )
            return None
        funnel.survived("change_points")
        if trace is not None:
            trace["change_points"].observe(
                True, seconds=time.perf_counter() - started
            )

        context = MetricContext.from_tags(series.name, series.tags)
        interval = (now - windowed.analysis_start) / max(
            1, windowed.analysis.size + windowed.extended.size
        )
        regression = Regression(
            context=context,
            kind=RegressionKind.SHORT_TERM,
            change_index=candidate.index,
            change_time=windowed.analysis_start + candidate.index * interval,
            mean_before=candidate.mean_before,
            mean_after=candidate.mean_after,
            window=self._oriented_view(windowed),
            detected_at=now,
        )

        started = time.perf_counter() if trace is not None else 0.0
        if self.enable_went_away:
            verdict = self.went_away_detector.check(regression.window, candidate)
            regression.record(verdict)
            if not verdict.passed:
                if trace is not None:
                    trace["went_away"].observe(
                        False,
                        verdict.reason.value if verdict.reason else None,
                        time.perf_counter() - started,
                    )
                return regression
        funnel.survived("went_away")
        if trace is not None:
            trace["went_away"].observe(True, seconds=time.perf_counter() - started)

        started = time.perf_counter() if trace is not None else 0.0
        if self.enable_seasonality:
            verdict = self.seasonality_detector.check(regression.window, candidate)
            regression.record(verdict)
            if not verdict.passed:
                if trace is not None:
                    trace["seasonality"].observe(
                        False,
                        verdict.reason.value if verdict.reason else None,
                        time.perf_counter() - started,
                    )
                return regression
        funnel.survived("seasonality")
        if trace is not None:
            trace["seasonality"].observe(True, seconds=time.perf_counter() - started)

        started = time.perf_counter() if trace is not None else 0.0
        if not self.config.exceeds_threshold(
            candidate.magnitude, candidate.mean_before
        ):
            regression.record(
                DetectionVerdict.drop(
                    FilterReason.BELOW_THRESHOLD,
                    detail=(
                        f"magnitude {candidate.magnitude:.3g} below "
                        f"threshold {self.config.threshold:.3g}"
                    ),
                )
            )
            if trace is not None:
                trace["threshold"].observe(
                    False,
                    FilterReason.BELOW_THRESHOLD.value,
                    time.perf_counter() - started,
                )
            return regression
        funnel.survived("threshold")
        if trace is not None:
            trace["threshold"].observe(True, seconds=time.perf_counter() - started)

        started = time.perf_counter() if trace is not None else 0.0
        if self.planned_changes is not None:
            verdict = self.planned_changes.check(regression)
            regression.record(verdict)
            if not verdict.passed:
                # Planned-change suppression is not a Table 3 funnel
                # stage; tally the drop under same_regression so the
                # span still accounts for every candidate that left the
                # threshold stage alive.
                if trace is not None:
                    trace["same_regression"].observe(
                        False,
                        verdict.reason.value if verdict.reason else None,
                        time.perf_counter() - started,
                    )
                return regression

        verdict = self.same_regression_merger.check(regression)
        regression.record(verdict)
        if not verdict.passed:
            if trace is not None:
                trace["same_regression"].observe(
                    False,
                    verdict.reason.value if verdict.reason else None,
                    time.perf_counter() - started,
                )
            return regression
        funnel.survived("same_regression")
        if trace is not None:
            trace["same_regression"].observe(
                True, seconds=time.perf_counter() - started
            )
        return regression

    def _long_term(
        self,
        series: TimeSeries,
        now: float,
        funnel: FunnelCounters,
        trace: Optional[Dict[str, StageTally]] = None,
    ) -> Optional[Regression]:
        started = time.perf_counter() if trace is not None else 0.0
        windowed = self.config.windows.view(series, now)
        if not windowed.has_minimum_data(
            self.min_historic_points, self.min_analysis_points
        ):
            if trace is not None:
                trace["change_points"].observe(
                    False, "insufficient_data", time.perf_counter() - started
                )
            return None
        if not self._window_ok(series, windowed, trace, started):
            return None
        context = MetricContext.from_tags(series.name, series.tags)
        regression = self.long_term_detector.detect(
            self._oriented_view(windowed), context, detected_at=now
        )
        if regression is None:
            if trace is not None:
                trace["change_points"].observe(
                    False, "no_change_point", time.perf_counter() - started
                )
            return None
        funnel.survived("change_points")
        if trace is not None:
            trace["change_points"].observe(
                True, seconds=time.perf_counter() - started
            )
        # The long-term path has no went-away stage by design.  Absolute
        # thresholds were enforced inside the detector; relative ones
        # (which need the baseline) are checked here.
        started = time.perf_counter() if trace is not None else 0.0
        if not self.config.exceeds_threshold(
            regression.magnitude, regression.mean_before
        ):
            regression.record(
                DetectionVerdict.drop(
                    FilterReason.BELOW_THRESHOLD,
                    detail=(
                        f"long-term magnitude {regression.magnitude:.3g} below "
                        f"threshold {self.config.threshold:.3g}"
                    ),
                )
            )
            if trace is not None:
                trace["threshold"].observe(
                    False,
                    FilterReason.BELOW_THRESHOLD.value,
                    time.perf_counter() - started,
                )
            return regression
        funnel.survived("threshold")
        if trace is not None:
            trace["threshold"].observe(True, seconds=time.perf_counter() - started)
        started = time.perf_counter() if trace is not None else 0.0
        if self.planned_changes is not None:
            verdict = self.planned_changes.check(regression)
            regression.record(verdict)
            if not verdict.passed:
                if trace is not None:
                    trace["same_regression"].observe(
                        False,
                        verdict.reason.value if verdict.reason else None,
                        time.perf_counter() - started,
                    )
                return regression
        verdict = self.same_regression_merger.check(regression)
        regression.record(verdict)
        if not verdict.passed:
            if trace is not None:
                trace["same_regression"].observe(
                    False,
                    verdict.reason.value if verdict.reason else None,
                    time.perf_counter() - started,
                )
            return regression
        funnel.survived("same_regression")
        if trace is not None:
            trace["same_regression"].observe(
                True, seconds=time.perf_counter() - started
            )
        return regression

    def _oriented_view(self, windowed):
        """Apply metric orientation to a windowed view."""
        if self.config.higher_is_worse:
            return windowed
        from dataclasses import replace

        return replace(
            windowed,
            historic=-windowed.historic,
            analysis=-windowed.analysis,
            extended=-windowed.extended,
        )
