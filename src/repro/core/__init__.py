"""FBDetect's core: the regression-detection pipeline (Figure 6).

Stages, in execution order for the short-term path:

1. :mod:`repro.core.change_point` — CUSUM+EM change-point detection with
   likelihood-ratio validation (§5.2.1).
2. :mod:`repro.core.went_away` — transient-issue filtering (§5.2.2).
3. :mod:`repro.core.seasonality` — STL-based seasonality filtering (§5.2.3).
4. :mod:`repro.core.same_regression` — SameRegressionMerger for the same
   regression surfacing in overlapping analysis windows (Table 3).
5. :mod:`repro.core.dedup_som` — fast SOM-based deduplication (§5.5.1).
6. :mod:`repro.core.cost_shift` — cost-shift false-positive filtering (§5.4).
7. :mod:`repro.core.dedup_pairwise` — thorough pairwise deduplication (§5.5.2).
8. :mod:`repro.core.root_cause` — root-cause candidate ranking (§5.6).

The long-term path (:mod:`repro.core.long_term`, §5.3) decomposes first
and skips the went-away detector.  :mod:`repro.core.pipeline` wires both
paths together and keeps the per-stage funnel counts of Table 3;
:mod:`repro.core.detector` is the top-level ``FBDetect`` facade.
"""

from repro.core.change_point import ChangePointDetector
from repro.core.cost_shift import CostDomain, CostShiftDetector
from repro.core.dedup_pairwise import MergeRule, PairwiseDedup
from repro.core.dedup_som import SOMDedup
from repro.core.detector import FBDetect
from repro.core.importance import importance_score
from repro.core.incremental import IncrementalScanCache
from repro.core.long_term import LongTermDetector
from repro.core.pipeline import DetectionPipeline, FunnelCounters, PipelineResult
from repro.core.root_cause import RootCauseAnalyzer, RootCauseCandidate
from repro.core.same_regression import SameRegressionMerger
from repro.core.seasonality import SeasonalityDetector
from repro.core.types import (
    DetectionVerdict,
    FilterReason,
    MetricContext,
    Regression,
    RegressionGroup,
    RegressionKind,
)
from repro.core.went_away import WentAwayDetector

__all__ = [
    "ChangePointDetector",
    "CostDomain",
    "CostShiftDetector",
    "DetectionPipeline",
    "DetectionVerdict",
    "FBDetect",
    "FilterReason",
    "FunnelCounters",
    "IncrementalScanCache",
    "LongTermDetector",
    "MergeRule",
    "MetricContext",
    "PairwiseDedup",
    "PipelineResult",
    "Regression",
    "RegressionGroup",
    "RegressionKind",
    "RootCauseAnalyzer",
    "RootCauseCandidate",
    "SOMDedup",
    "SameRegressionMerger",
    "SeasonalityDetector",
    "importance_score",
]
