"""SameRegressionMerger: dedup across overlapping analysis windows.

FBDetect re-runs periodically (every "re-run interval" of Table 1) with
analysis windows that overlap, so one regression surfaces in several
consecutive runs.  SameRegressionMerger (Table 3) drops a newly detected
regression when a prior run already reported the same metric regressing
at (approximately) the same change time with a similar magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.types import DetectionVerdict, FilterReason, Regression

__all__ = ["SameRegressionMerger"]


@dataclass
class _PriorRegression:
    change_time: float
    magnitude: float


class SameRegressionMerger:
    """Stateful same-regression filter across detection runs.

    Args:
        time_tolerance: Change times within this many seconds count as
            the same change.
        magnitude_tolerance: Relative magnitude difference below which
            two reports are the same regression.
    """

    def __init__(
        self,
        time_tolerance: float = 3600.0,
        magnitude_tolerance: float = 0.5,
    ) -> None:
        self.time_tolerance = time_tolerance
        self.magnitude_tolerance = magnitude_tolerance
        self._seen: Dict[str, List[_PriorRegression]] = {}

    def check(self, regression: Regression) -> DetectionVerdict:
        """Drop duplicates of previously recorded regressions.

        New (non-duplicate) regressions are recorded for future runs.
        """
        metric = regression.context.metric_id
        priors = self._seen.setdefault(metric, [])
        for prior in priors:
            if abs(prior.change_time - regression.change_time) > self.time_tolerance:
                continue
            if self._similar_magnitude(prior.magnitude, regression.magnitude):
                return DetectionVerdict.drop(
                    FilterReason.SAME_REGRESSION,
                    detail=(
                        f"already reported at t={prior.change_time:.0f} "
                        f"with magnitude {prior.magnitude:.3g}"
                    ),
                )
        priors.append(
            _PriorRegression(
                change_time=regression.change_time, magnitude=regression.magnitude
            )
        )
        return DetectionVerdict.keep()

    def _similar_magnitude(self, a: float, b: float) -> bool:
        scale = max(abs(a), abs(b))
        if scale == 0:
            return True
        return abs(a - b) / scale <= self.magnitude_tolerance

    def reset(self) -> None:
        """Forget all prior regressions (new evaluation period)."""
        self._seen.clear()
