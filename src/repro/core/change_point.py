"""Change-point detector (§5.2.1).

Applies CUSUM and EM iteratively to converge on the change point with the
maximum likelihood of having different means before and after, then
validates the candidate with a likelihood-ratio chi-squared test at
significance 0.01.  Detection runs over the analysis window, using the
historic window only downstream (went-away, thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.cusum import cusum_changepoint
from repro.stats.em import em_mean_split
from repro.stats.hypothesis import likelihood_ratio_test

__all__ = ["ChangePointCandidate", "ChangePointDetector"]


@dataclass(frozen=True)
class ChangePointCandidate:
    """A validated change point within a window.

    Attributes:
        index: First index of the post-change segment.
        mean_before: Mean of the pre-change segment.
        mean_after: Mean of the post-change segment.
        p_value: Likelihood-ratio test p-value.
    """

    index: int
    mean_before: float
    mean_after: float
    p_value: float

    @property
    def magnitude(self) -> float:
        return self.mean_after - self.mean_before


class ChangePointDetector:
    """CUSUM + EM iterative change-point detection with LRT validation.

    Args:
        significance_level: LRT rejection level (paper: 0.01).
        min_segment: Minimum points on each side of a change point.
        max_em_iterations: EM computation budget.
    """

    def __init__(
        self,
        significance_level: float = 0.01,
        min_segment: int = 3,
        max_em_iterations: int = 50,
    ) -> None:
        if not 0 < significance_level < 1:
            raise ValueError("significance_level must be in (0, 1)")
        self.significance_level = significance_level
        self.min_segment = min_segment
        self.max_em_iterations = max_em_iterations

    def detect(self, values: Sequence[float]) -> Optional[ChangePointCandidate]:
        """Find and validate the most likely change point in ``values``.

        Returns:
            A validated candidate, or ``None`` when the series is too
            short, contains no extremum, or the null hypothesis (no
            change) cannot be rejected.
        """
        x = np.asarray(values, dtype=float)
        if x.size < 2 * self.min_segment:
            return None

        # CUSUM proposes; EM refines.  Iterate until the split stabilizes
        # (em_mean_split itself iterates to convergence, so one refinement
        # round after CUSUM suffices; we keep a safety loop mirroring the
        # paper's "iteratively" phrasing).
        proposal = cusum_changepoint(x, min_segment=self.min_segment)
        if proposal is None:
            return None
        index = proposal.index
        for _ in range(3):
            refined = em_mean_split(
                x,
                initial_index=index,
                min_segment=self.min_segment,
                max_iterations=self.max_em_iterations,
            )
            if refined is None:
                return None
            if refined[0] == index:
                break
            index = refined[0]

        test = likelihood_ratio_test(x, index, self.significance_level)
        if not test.significant:
            return None
        return ChangePointCandidate(
            index=index,
            mean_before=float(x[:index].mean()),
            mean_after=float(x[index:].mean()),
            p_value=test.p_value,
        )

    def detect_increase(self, values: Sequence[float]) -> Optional[ChangePointCandidate]:
        """Like :meth:`detect`, but only report mean *increases*.

        The paper's convention: "Without loss of generality, we assume
        that an increase in a metric's value means a regression" (§5.2).
        """
        candidate = self.detect(values)
        if candidate is None or candidate.magnitude <= 0:
            return None
        return candidate
