"""Went-away detector: transient-issue filtering (§5.2.2).

Transient issues — server failures, load spikes, canary tests — create
change points that recover on their own and must not be reported.  After
three design iterations the paper settled on the predicate::

    NewPattern OR [SignificantRegression AND LastingTrend
                   AND (NOT RegressionGoneAway)]

evaluated on SAX-discretized windows (N=20 buckets, 3% validity) so that
"very different" value patterns after different change points are
recognized as having different causes (the Figure 7 problem: a historic
spike must not mask a true regression at the end of the series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.change_point import ChangePointCandidate
from repro.core.types import DetectionVerdict, FilterReason
from repro.stats.mann_kendall import mann_kendall_test
from repro.stats.robust import mad_threshold
from repro.stats.sax import DEFAULT_BUCKETS, DEFAULT_VALID_FRACTION, sax_encode
from repro.stats.theil_sen import theil_sen
from repro.tsdb.windows import WindowedView

__all__ = ["WentAwayDetector", "WentAwayDiagnosis"]


@dataclass(frozen=True)
class WentAwayDiagnosis:
    """The four predicate terms, for explainability and testing.

    Attributes:
        new_pattern: Post-regression values form a historically unseen
            pattern (and are not *below* all historically valid values).
        significant_regression: Magnitude clears the SAX-letter and
            percentile significance checks.
        lasting_trend: The upward trend persists per Mann-Kendall +
            Theil-Sen against the MAD-derived threshold.
        gone_away: The final data points have recovered to baseline.
        is_true_regression: The combined predicate.
    """

    new_pattern: bool
    significant_regression: bool
    lasting_trend: bool
    gone_away: bool

    @property
    def is_true_regression(self) -> bool:
        return self.new_pattern or (
            self.significant_regression and self.lasting_trend and not self.gone_away
        )


class WentAwayDetector:
    """Implements the §5.2.2 predicate.

    Args:
        n_buckets: SAX bucket count N (paper: 20).
        valid_fraction: SAX bucket-validity fraction X (paper: 3%).
        regression_coefficient: Sensitivity multiplier on the MAD
            threshold (paper default: 1.5).
        new_pattern_fraction: Fraction of post-change points that must
            fall in historically invalid buckets for NewPattern ("most
            letters ... invalid").  The default of 0.65 tolerates
            transients occupying up to ~half the post window (plus the
            few baseline points that always land in sparse tail buckets)
            without firing.
        tail_points: Number of final data points RegressionGoneAway
            examines ("the last few data points").
    """

    def __init__(
        self,
        n_buckets: int = DEFAULT_BUCKETS,
        valid_fraction: float = DEFAULT_VALID_FRACTION,
        regression_coefficient: float = 1.5,
        new_pattern_fraction: float = 0.65,
        tail_points: int = 5,
    ) -> None:
        self.n_buckets = n_buckets
        self.valid_fraction = valid_fraction
        self.regression_coefficient = regression_coefficient
        self.new_pattern_fraction = new_pattern_fraction
        self.tail_points = tail_points

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def diagnose(
        self,
        view: WindowedView,
        candidate: ChangePointCandidate,
    ) -> WentAwayDiagnosis:
        """Evaluate all four predicate terms for a candidate."""
        historic = view.historic
        analysis = view.analysis
        post = np.concatenate([analysis[candidate.index :], view.extended])
        pre = np.concatenate([historic, analysis[: candidate.index]])

        historic_enc = sax_encode(
            historic, self.n_buckets, self.valid_fraction
        )
        grid = (historic_enc.bucket_edges[0], historic_enc.bucket_edges[-1])
        post_enc = sax_encode(post, self.n_buckets, self.valid_fraction, value_range=grid)

        new_pattern = self._new_pattern(historic_enc, post_enc, post)
        significant = self._significant_regression(historic_enc, post_enc, historic, pre, post)
        lasting = self._lasting_trend(historic, analysis, post)
        gone = self._gone_away(historic, post)
        return WentAwayDiagnosis(
            new_pattern=new_pattern,
            significant_regression=significant,
            lasting_trend=lasting,
            gone_away=gone,
        )

    def check(
        self,
        view: WindowedView,
        candidate: ChangePointCandidate,
    ) -> DetectionVerdict:
        """Verdict form of :meth:`diagnose` for pipeline use."""
        diagnosis = self.diagnose(view, candidate)
        if diagnosis.is_true_regression:
            return DetectionVerdict.keep(detail=f"went-away terms: {diagnosis}")
        return DetectionVerdict.drop(
            FilterReason.WENT_AWAY, detail=f"went-away terms: {diagnosis}"
        )

    # ------------------------------------------------------------------
    # Predicate terms
    # ------------------------------------------------------------------

    def _new_pattern(self, historic_enc, post_enc, post: np.ndarray) -> bool:
        """Post-change values form a historically unseen pattern.

        "If most letters in the post-regression SAX string are invalid
        [relative to history], FBDetect treats the post-regression time
        series as a new pattern and reports a regression, unless the
        average value is lower than the lowest valid bucket in historical
        data, indicating no significant cost increase."
        """
        if post.size == 0 or not historic_enc.valid_letters:
            return False
        outside = sum(
            1 for letter in post_enc.letters if letter not in historic_enc.valid_letters
        )
        if outside / post.size < self.new_pattern_fraction:
            return False
        lowest_valid = min(historic_enc.valid_letters)
        lowest_bound = historic_enc.bucket_lower_bound(lowest_valid)
        if float(post.mean()) < lowest_bound:
            return False  # New pattern, but cheaper — an improvement.
        return True

    def _significant_regression(
        self,
        historic_enc,
        post_enc,
        historic: np.ndarray,
        pre: np.ndarray,
        post: np.ndarray,
    ) -> bool:
        """Magnitude significance via SAX letters and percentiles.

        The largest post-change letter must reach the largest valid
        pre-change letter, and P90(post) must exceed both P95(historic)
        and P90(previous day) — the previous day approximated by the most
        recent pre-change points.
        """
        if post.size == 0 or pre.size == 0:
            return False
        if post_enc.max_letter() < historic_enc.max_valid_letter():
            return False
        p90_post = float(np.percentile(post, 90))
        if historic.size and p90_post <= float(np.percentile(historic, 95)):
            return False
        prev_day = pre[-min(pre.size, max(self.tail_points * 4, 24)):]
        if p90_post <= float(np.percentile(prev_day, 90)):
            return False
        return True

    def _lasting_trend(
        self,
        historic: np.ndarray,
        analysis: np.ndarray,
        post: np.ndarray,
    ) -> bool:
        """Upward trend persists (Mann-Kendall + Theil-Sen vs MAD threshold).

        Mann-Kendall runs on both the post-regression window and the
        entire analysis window; Theil-Sen measures any trend found, the
        lower slope winning to avoid over-estimation.  The total rise
        implied by the slope is compared against ``coefficient * MAD *
        1.4826`` computed over the historic baseline.
        """
        if analysis.size < 3:
            return False
        threshold = mad_threshold(historic, self.regression_coefficient)
        post_mk = mann_kendall_test(post) if post.size >= 3 else None

        # A post window holding flat at an elevated level is the classic
        # lasting step: no decreasing tendency, and the sustained level
        # clears the robust threshold over the historic baseline.  (A
        # pure trend test under-measures steps that land early in the
        # analysis window, where most point pairs lie after the change.)
        if (
            post_mk is not None
            and not post_mk.is_decreasing
            and historic.size > 0
            and float(np.median(post)) - float(np.median(historic)) >= threshold
        ):
            return True

        slopes = []
        if post_mk is not None and post_mk.is_increasing:
            slopes.append(theil_sen(post).slope)
        analysis_mk = mann_kendall_test(analysis)
        if analysis_mk.is_increasing:
            slopes.append(theil_sen(analysis).slope)
        if not slopes:
            return False
        slope = min(slopes)
        total_rise = slope * analysis.size
        return total_rise >= threshold

    def _gone_away(self, historic: np.ndarray, post: np.ndarray) -> bool:
        """The regression vanished in the last few data points.

        The tail must both trend downward (or sit flat at baseline) and
        have recovered to within the MAD threshold of the historic
        median.
        """
        if post.size < self.tail_points:
            return False
        tail = post[-self.tail_points :]
        if historic.size == 0:
            return False
        baseline = float(np.median(historic))
        threshold = mad_threshold(historic, self.regression_coefficient)
        recovered = float(np.median(tail)) <= baseline + threshold
        return recovered
