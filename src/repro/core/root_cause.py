"""Root-cause analysis (§5.6).

The root cause of a regression is the specific code or configuration
change causing it.  FBDetect generates candidates from changes deployed
immediately before the regression and ranks them on weighted factors:

1. *Subroutine gCPU attribution* — the fraction of the regression's gCPU
   change attributable to stack samples involving subroutines the change
   modified (the Table 2 worked example: L/R = 0.04/0.05 = 80%).
2. *Text similarity* — TF-IDF cosine between the regression context
   (metric name, subroutine, stack frames) and the change context
   (title, summary, touched subroutines).
3. *Time-series correlation* — Pearson correlation between optional
   "setup" metric series (e.g. which algorithm serves requests) tied to
   a change and the regression's series.

Candidates are suggested only when the top confidence clears a bar;
otherwise FBDetect appropriately declines to guess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.types import Regression, RootCauseScore
from repro.fleet.changes import ChangeLog, CodeChange
from repro.profiling.gcpu import compute_gcpu
from repro.profiling.stacktrace import StackTrace
from repro.stats.correlation import aligned_pearson
from repro.text.similarity import text_cosine_similarity
from repro.text.tfidf import TfidfVectorizer

__all__ = ["RootCauseAnalyzer", "RootCauseCandidate", "gcpu_attribution"]


@dataclass(frozen=True)
class RootCauseCandidate:
    """A change under consideration with its evidence."""

    change: CodeChange
    score: float
    factors: Dict[str, float]


def gcpu_attribution(
    samples_before: Sequence[StackTrace],
    samples_after: Sequence[StackTrace],
    regressed: str,
    modified: Sequence[str],
) -> float:
    """Fraction L/R of a gCPU regression attributable to ``modified``.

    R is the gCPU change of ``regressed`` between the two sample sets;
    L is the gCPU change computed over only those samples (containing
    ``regressed``) that also involve a modified subroutine.  Matches the
    Table 2 worked example exactly.

    Returns:
        L/R clipped to [0, 1]; 0.0 when R is non-positive (no regression
        to attribute).
    """
    modified_set = set(modified)

    def weights(samples: Sequence[StackTrace]) -> tuple:
        total = regressed_weight = attributed_weight = 0.0
        for trace in samples:
            total += trace.weight
            names = set(trace.subroutines)
            if regressed in names:
                regressed_weight += trace.weight
                if names & modified_set:
                    attributed_weight += trace.weight
        return total, regressed_weight, attributed_weight

    total_b, reg_b, attr_b = weights(samples_before)
    total_a, reg_a, attr_a = weights(samples_after)
    if total_b == 0 or total_a == 0:
        return 0.0
    r = reg_a / total_a - reg_b / total_b
    if r <= 0:
        return 0.0
    l = attr_a / total_a - attr_b / total_b
    return float(np.clip(l / r, 0.0, 1.0))


class RootCauseAnalyzer:
    """Ranks candidate changes for a regression.

    Args:
        change_log: Source of candidate changes.
        samples_before: Stack samples from before the regression (gCPU
            attribution factor).
        samples_after: Stack samples from after the regression.
        setup_series: Optional ``{change_id: {timestamp: value}}`` setup
            metrics for the time-correlation factor.
        lookback: How long before the change point to harvest candidates.
        factor_weights: Weights for (attribution, text, correlation).
        confidence_threshold: Minimum top score to suggest anything.
        top_k: Number of candidates reported (paper judges top-3).
    """

    def __init__(
        self,
        change_log: ChangeLog,
        samples_before: Sequence[StackTrace] = (),
        samples_after: Sequence[StackTrace] = (),
        setup_series: Optional[Mapping[str, Mapping[float, float]]] = None,
        lookback: float = 6 * 3600.0,
        factor_weights: Optional[Mapping[str, float]] = None,
        confidence_threshold: float = 0.25,
        top_k: int = 3,
    ) -> None:
        self.change_log = change_log
        self.samples_before = list(samples_before)
        self.samples_after = list(samples_after)
        self.setup_series = dict(setup_series or {})
        self.lookback = lookback
        self.factor_weights = dict(
            factor_weights or {"gcpu_attribution": 0.5, "text_similarity": 0.3, "time_correlation": 0.2}
        )
        self.confidence_threshold = confidence_threshold
        self.top_k = top_k

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def analyze(self, regression: Regression) -> List[RootCauseCandidate]:
        """Ranked root-cause candidates (possibly empty).

        An empty list means FBDetect's confidence was too low to suggest
        a root cause — the appropriate outcome for regressions caused by
        diffuse feature releases or un-exported changes (§6.3).
        """
        candidates = self.change_log.deployed_between(
            regression.change_time - self.lookback, regression.change_time + 1.0
        )
        if not candidates:
            return []

        scored = [self._score(regression, change) for change in candidates]
        scored.sort(key=lambda c: -c.score)
        if not scored or scored[0].score < self.confidence_threshold:
            return []
        top = scored[: self.top_k]
        regression.root_cause_candidates = [
            RootCauseScore(change_id=c.change.change_id, score=c.score, factors=c.factors)
            for c in top
        ]
        return top

    # ------------------------------------------------------------------
    # Factors
    # ------------------------------------------------------------------

    def _score(self, regression: Regression, change: CodeChange) -> RootCauseCandidate:
        factors = {
            "gcpu_attribution": self._attribution_factor(regression, change),
            "text_similarity": self._text_factor(regression, change),
            "time_correlation": self._correlation_factor(regression, change),
        }
        score = sum(self.factor_weights.get(name, 0.0) * value for name, value in factors.items())
        # Direct modification of the regressed subroutine is itself strong
        # code-and-stack-trace evidence ("changes that modify downstream
        # subroutines transitively invoked ... are flagged as suspects").
        if regression.context.subroutine and self._modifies_stack(regression, change):
            score = min(1.0, score + 0.25)
        return RootCauseCandidate(change=change, score=float(score), factors=factors)

    def _modifies_stack(self, regression: Regression, change: CodeChange) -> bool:
        """Change touches the regressed subroutine or one it invokes."""
        target = regression.context.subroutine
        modified = set(change.modified_subroutines)
        if target in modified:
            return True
        for trace in self.samples_after:
            if not trace.contains(target):
                continue
            if set(trace.callees_of(target)) & modified:
                return True
        return False

    def _attribution_factor(self, regression: Regression, change: CodeChange) -> float:
        if regression.context.subroutine is None or not self.samples_before:
            return 0.0
        return gcpu_attribution(
            self.samples_before,
            self.samples_after,
            regression.context.subroutine,
            change.modified_subroutines,
        )

    def _text_factor(self, regression: Regression, change: CodeChange) -> float:
        regression_text = " ".join(
            filter(
                None,
                [
                    regression.context.metric_id,
                    regression.context.metric_name,
                    regression.context.subroutine,
                    regression.context.endpoint,
                ],
            )
        )
        change_text = " ".join(
            filter(
                None,
                [change.title, change.summary, " ".join(change.modified_subroutines)],
            )
        )
        if not regression_text or not change_text:
            return 0.0
        return text_cosine_similarity(regression_text, change_text)

    def _correlation_factor(self, regression: Regression, change: CodeChange) -> float:
        series = self.setup_series.get(change.change_id)
        if not series:
            return 0.0
        correlation = aligned_pearson(regression.series_mapping(), series)
        return max(0.0, correlation)
