"""PairwiseDedup: thorough second-pass deduplication (§5.5.2).

Where SOMDedup deduplicates same-type metrics within one analysis window,
PairwiseDedup merges regressions *across* windows and metric types (gCPU
vs throughput).  Each new representative regression is compared against
existing groups on a set of similarity features; user-defined merge rules
decide whether the scores warrant a merge.

Built-in features:

- ``time_correlation`` — max Pearson correlation between the source's
  series and any member's series, aligned on shared timestamps.
- ``text_similarity`` — max token-count cosine similarity between metric
  IDs (raw counts, not TF-IDF: pairwise fitting would down-weight
  exactly the tokens two metric IDs share).
- ``stack_overlap`` — max fraction of shared stack samples between the
  source's subroutine and the union of the group's subroutines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.types import DetectionVerdict, FilterReason, Regression, RegressionGroup
from repro.profiling.gcpu import stack_trace_overlap
from repro.profiling.stacktrace import StackTrace
from repro.stats.correlation import aligned_pearson
from repro.text.similarity import token_cosine_similarity

__all__ = ["MergeRule", "PairwiseDedup"]


@dataclass(frozen=True)
class MergeRule:
    """A user-defined merge policy over feature scores.

    Attributes:
        thresholds: Per-feature minimum score.
        require_all: ``True`` — every listed feature must clear its
            threshold; ``False`` — any one suffices.
    """

    thresholds: Mapping[str, float]
    require_all: bool = False

    def matches(self, scores: Mapping[str, float]) -> bool:
        checks = [
            scores.get(feature, 0.0) >= minimum
            for feature, minimum in self.thresholds.items()
        ]
        if not checks:
            return False
        return all(checks) if self.require_all else any(checks)


#: Default policy: strong time correlation alone, strong text similarity
#: alone, or meaningful stack overlap, merges.
DEFAULT_RULES = (
    MergeRule({"time_correlation": 0.9}),
    MergeRule({"text_similarity": 0.75}),
    MergeRule({"stack_overlap": 0.6}),
    # Correlated timing alone is weak evidence (unrelated series shift
    # together whenever two changes land in the same deploy window), so
    # the combined rule also demands meaningful metric-ID overlap beyond
    # the service/namespace tokens every metric of a service shares.
    MergeRule(
        {"time_correlation": 0.7, "text_similarity": 0.65}, require_all=True
    ),
)


class PairwiseDedup:
    """Pairwise-comparison deduplication against persistent groups.

    Args:
        samples: Stack-trace history for the stack-overlap feature.
        rules: Merge rules (defaults above).
        max_members_compared: Cap on per-group member comparisons, to
            bound the pairwise cost.
    """

    def __init__(
        self,
        samples: Sequence[StackTrace] = (),
        rules: Sequence[MergeRule] = DEFAULT_RULES,
        max_members_compared: int = 10,
    ) -> None:
        self.samples = list(samples)
        self.rules = list(rules)
        self.max_members_compared = max_members_compared
        self.groups: List[RegressionGroup] = []
        self._next_group_id = 1_000_000  # distinct from SOMDedup ids

    def process(self, regressions: Sequence[Regression]) -> List[RegressionGroup]:
        """Merge each new regression into groups or open new ones.

        Regressions merged into an existing group receive a
        PAIRWISE_DUPLICATE verdict; group openers a keep verdict.

        Returns:
            Groups that gained members this call (new or extended).
        """
        touched: List[RegressionGroup] = []
        for regression in regressions:
            group = self._best_group(regression)
            if group is not None:
                group.add(regression)
                regression.representative = False
                regression.record(
                    DetectionVerdict.drop(
                        FilterReason.PAIRWISE_DUPLICATE,
                        detail=f"merged into group {group.group_id}",
                    )
                )
            else:
                group = RegressionGroup(group_id=self._next_group_id)
                self._next_group_id += 1
                group.add(regression)
                group.representative = regression
                regression.record(DetectionVerdict.keep(detail="PairwiseDedup new group"))
                self.groups.append(group)
            if group not in touched:
                touched.append(group)
        return touched

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _best_group(self, regression: Regression) -> Optional[RegressionGroup]:
        """The matching group with the highest aggregate score, if any."""
        best: Optional[RegressionGroup] = None
        best_score = -np.inf
        for group in self.groups:
            scores = self.feature_scores(regression, group)
            if any(rule.matches(scores) for rule in self.rules):
                aggregate = sum(scores.values())
                if aggregate > best_score:
                    best, best_score = group, aggregate
        return best

    def feature_scores(
        self, regression: Regression, group: RegressionGroup
    ) -> Dict[str, float]:
        """Similarity features between a regression and a group."""
        members = group.members[: self.max_members_compared]
        source_series = regression.series_mapping()

        time_correlation = 0.0
        text_similarity = 0.0
        for member in members:
            correlation = aligned_pearson(source_series, member.series_mapping())
            time_correlation = max(time_correlation, correlation)
            similarity = token_cosine_similarity(
                regression.context.metric_id, member.context.metric_id
            )
            text_similarity = max(text_similarity, similarity)

        stack_overlap = 0.0
        source_subroutine = regression.context.subroutine
        if source_subroutine and self.samples:
            for member in members:
                target = member.context.subroutine
                if not target:
                    continue
                overlap = stack_trace_overlap(self.samples, source_subroutine, target)
                stack_overlap = max(stack_overlap, overlap)

        return {
            "time_correlation": time_correlation,
            "text_similarity": text_similarity,
            "stack_overlap": stack_overlap,
        }
