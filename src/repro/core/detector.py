"""FBDetect: the top-level facade.

Wraps a :class:`DetectionPipeline` with the periodic re-run loop of
Table 1 and a convenience single-series API.

Example::

    from repro import FBDetect, table1_config

    detector = FBDetect(table1_config("frontfaas_small"))
    result = detector.run(database, now=simulation_end)
    for regression in result.reported:
        print(regression.context.metric_id, regression.magnitude)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import DetectionConfig
from repro.core.pipeline import DetectionPipeline, FunnelCounters, PipelineResult
from repro.core.types import MetricContext, Regression
from repro.fleet.changes import ChangeLog
from repro.profiling.stacktrace import StackTrace
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.series import TimeSeries

__all__ = ["FBDetect"]


class FBDetect:
    """In-production performance-regression detector.

    Args:
        config: Workload configuration (use
            :func:`repro.config.table1_config` for the paper's presets).
        change_log: Known code/configuration changes.
        samples: Stack-trace sample history.
        series_filter: Tag filters restricting which series are scanned.
    """

    def __init__(
        self,
        config: DetectionConfig,
        change_log: Optional[ChangeLog] = None,
        samples: Sequence[StackTrace] = (),
        series_filter: Optional[Dict[str, str]] = None,
        **pipeline_kwargs,
    ) -> None:
        self.config = config
        self.pipeline = DetectionPipeline(
            config,
            change_log=change_log,
            samples=samples,
            series_filter=series_filter,
            **pipeline_kwargs,
        )

    def run(self, database: TimeSeriesDatabase, now: float) -> PipelineResult:
        """One detection scan at reference time ``now``."""
        return self.pipeline.run(database, now)

    def invalidate_incremental(self) -> None:
        """Drop derived incremental-scan caches (see the pipeline)."""
        self.pipeline.invalidate_incremental()

    def run_periodic(
        self,
        database: TimeSeriesDatabase,
        start: float,
        end: float,
    ) -> List[PipelineResult]:
        """Scans at every re-run interval in ``[start, end]``.

        Mirrors production operation: the SameRegressionMerger and
        PairwiseDedup state persists across runs, so a regression that
        stays visible through many overlapping windows is reported once.
        """
        results = []
        now = start
        while now <= end:
            results.append(self.run(database, now))
            now += self.config.rerun_interval
        return results

    def detect_series(
        self,
        values: Sequence[float],
        interval: float = 60.0,
        name: str = "adhoc.series",
        tags: Optional[Dict[str, str]] = None,
    ) -> PipelineResult:
        """Convenience: run detection over one raw value array.

        The array is laid out on a uniform time grid sized to exactly
        fill the configured historic+analysis+extended windows, then
        scanned once at its end.

        Args:
            values: The series values, oldest first.
            interval: Ignored except as a scale; the grid is derived from
                the window spec so the array always spans it.
            name: Metric id given to the ad-hoc series.
            tags: Optional tags (service/subroutine/metric).
        """
        x = np.asarray(values, dtype=float)
        database = TimeSeriesDatabase()
        total = self.config.windows.total
        step = total / max(1, x.size)
        series = database.create(name, tags or {})
        for i, value in enumerate(x):
            series.append(i * step, float(value))
        return self.run(database, now=total)
