"""ImportanceScore for choosing a group's representative (§5.5.1).

::

    ImportanceScore = w1 * RelativeCostChange
                    + w2 * AbsoluteCostChange
                    + w3 * (1 - PopularityScore)
                    + w4 * PotentialRootCauseFound

with default weights w = (0.2, 0.6, 0.1, 0.1).  The representative should
have a significant change, avoid widely invoked subroutines (high
popularity), and ideally have known root-cause candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.types import Regression
from repro.profiling.stacktrace import StackTrace

__all__ = ["ImportanceWeights", "importance_score", "popularity_score"]


@dataclass(frozen=True)
class ImportanceWeights:
    """Tunable weights (paper defaults)."""

    relative_cost: float = 0.2
    absolute_cost: float = 0.6
    unpopularity: float = 0.1
    root_cause_found: float = 0.1


def popularity_score(
    subroutine: Optional[str],
    samples: Sequence[StackTrace],
) -> float:
    """Probability of ``subroutine`` appearing in a random stack sample."""
    if subroutine is None or not samples:
        return 0.0
    total = hits = 0.0
    for trace in samples:
        total += trace.weight
        if trace.contains(subroutine):
            hits += trace.weight
    return hits / total if total > 0 else 0.0


def importance_score(
    regression: Regression,
    samples: Sequence[StackTrace] = (),
    weights: ImportanceWeights = ImportanceWeights(),
    absolute_scale: float = 0.01,
) -> float:
    """ImportanceScore of a regression.

    Args:
        regression: The candidate representative.
        samples: Stack-trace history for the popularity term.
        weights: Term weights.
        absolute_scale: Absolute cost change that maps to a full 1.0 on
            the AbsoluteCostChange term (cost changes are unbounded, so
            they are squashed against this scale).

    Returns:
        The score; higher means a better representative.
    """
    relative = min(1.0, abs(regression.relative_magnitude))
    absolute = min(1.0, abs(regression.magnitude) / absolute_scale)
    popularity = popularity_score(regression.context.subroutine, samples)
    has_root_cause = 1.0 if regression.root_cause_candidates else 0.0
    return (
        weights.relative_cost * relative
        + weights.absolute_cost * absolute
        + weights.unpopularity * (1.0 - popularity)
        + weights.root_cause_found * has_root_cause
    )
