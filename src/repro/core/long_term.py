"""Long-term regression detection (§5.3).

Focuses on gradual, incremental changes.  Three steps, deliberately
ordered differently from the short-term path:

1. *Seasonality decomposition first* — STL smooths the series, which is
   good for gradual regressions (and bad for sudden ones, which is why
   the short-term path decomposes last).
2. *Regression detection on the trend*: baseline = the larger of the
   means at the start of the analysis window and of the historical
   window; current = the smaller of the means at the end of the analysis
   window and of the extended window.  Report when current - baseline
   exceeds the threshold.
3. *Change-point location*: fit a line to the normalized trend; a small
   RMSE means the change was gradual from the start (change point at the
   trend's beginning); otherwise search with the normal-loss dynamic
   program.

No went-away detector runs — the trend already reflects persistence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.types import MetricContext, Regression, RegressionKind
from repro.stats.autocorrelation import detect_season_length
from repro.stats.changepoint_dp import best_split_normal_loss
from repro.stats.stl import loess_smooth, stl_decompose
from repro.tsdb.windows import WindowedView

__all__ = ["LongTermDetector"]


@dataclass(frozen=True)
class _TrendSplit:
    """Where and how the long-term change happened."""

    index: int
    gradual: bool


class LongTermDetector:
    """Detects gradual long-term regressions.

    Args:
        threshold: Minimum (current - baseline) trend shift to report.
        rmse_threshold: Normalized-RMSE bound under which the trend is
            considered one gradual ramp.
        edge_fraction: Fraction of the window used for the start/end mean
            estimates.
        min_period: Smallest season length for the STL step.
        known_period: Externally known season length; skips detection.
    """

    def __init__(
        self,
        threshold: float,
        rmse_threshold: float = 0.1,
        edge_fraction: float = 0.15,
        min_period: int = 4,
        known_period: Optional[int] = None,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold
        self.rmse_threshold = rmse_threshold
        self.edge_fraction = edge_fraction
        self.min_period = min_period
        self.known_period = known_period

    def detect(
        self,
        view: WindowedView,
        context: MetricContext,
        detected_at: float = 0.0,
    ) -> Optional[Regression]:
        """Run the three-step long-term detection on a windowed series."""
        full = view.full
        if full.size < 10:
            return None

        trend = self._trend_of(full)

        baseline, current = self._baseline_and_current(view, trend)
        if current - baseline <= self.threshold:
            return None

        split = self._locate_change(trend)
        # Convert the full-series index into an analysis-window index
        # (clamped: a change point inside the historic window reports at
        # the analysis window's start).
        analysis_index = int(
            np.clip(split.index - view.historic.size, 0, max(0, view.analysis.size - 1))
        )
        interval = (view.now - view.historic_start) / max(1, full.size)
        change_time = view.historic_start + split.index * interval

        return Regression(
            context=context,
            kind=RegressionKind.LONG_TERM,
            change_index=analysis_index,
            change_time=change_time,
            mean_before=baseline,
            mean_after=current,
            window=view,
            detected_at=detected_at,
            features={"gradual": 1.0 if split.gradual else 0.0},
        )

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _trend_of(self, series: np.ndarray) -> np.ndarray:
        """STL trend when seasonality is present, else a loess smooth."""
        period = self.known_period or detect_season_length(
            series, min_period=self.min_period
        )
        if period is not None and series.size >= 2 * period:
            return stl_decompose(series, period).trend
        return loess_smooth(series, span=0.3)

    def _baseline_and_current(
        self, view: WindowedView, trend: np.ndarray
    ) -> tuple:
        """The paper's conservative baseline/current rule on the trend."""
        n_hist = view.historic.size
        n_analysis = view.analysis.size
        hist_trend = trend[:n_hist]
        analysis_trend = trend[n_hist : n_hist + n_analysis]
        extended_trend = trend[n_hist + n_analysis :]

        edge = max(3, int(self.edge_fraction * max(1, n_analysis)))
        start_hist = float(hist_trend[:edge].mean()) if hist_trend.size else -np.inf
        start_analysis = (
            float(analysis_trend[:edge].mean()) if analysis_trend.size else -np.inf
        )
        baseline = max(start_hist, start_analysis)

        end_analysis = (
            float(analysis_trend[-edge:].mean()) if analysis_trend.size else np.inf
        )
        end_extended = (
            float(extended_trend[-edge:].mean()) if extended_trend.size else np.inf
        )
        current = min(end_analysis, end_extended)
        return baseline, current

    def _locate_change(self, trend: np.ndarray) -> _TrendSplit:
        """Linear-fit RMSE test, else DP normal-loss split."""
        span = float(trend.max() - trend.min())
        if span <= 0:
            return _TrendSplit(index=0, gradual=True)
        normalized = (trend - trend.min()) / span
        x = np.arange(normalized.size, dtype=float)
        slope, intercept = np.polyfit(x, normalized, 1)
        rmse = float(np.sqrt(np.mean((normalized - (slope * x + intercept)) ** 2)))
        if rmse < self.rmse_threshold:
            return _TrendSplit(index=0, gradual=True)
        split = best_split_normal_loss(trend)
        if split is None:
            return _TrendSplit(index=0, gradual=True)
        return _TrendSplit(index=split.index, gradual=False)
