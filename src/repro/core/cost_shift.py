"""Cost-shift detector (§5.4).

Subroutine-level metrics reduce variance but invite a false-positive
class of their own: refactoring that moves code from subroutine A to
subroutine B makes B *look* regressed while total cost is unchanged
(Figure 1(b); 34% of subroutine-level regressions in the paper's
evaluation).  The detector examines higher-level *cost domains* — groups
of subroutines within which a cost shift is likely — and filters the
regression when the domain's total cost barely moved.

Default domains: upstream callers, the enclosing class, shared metadata
prefixes, endpoint name prefixes, and subroutines modified by the same
code commit.  Custom domain providers can be registered.

Decision rules per (regression, domain):

1. Domain did not exist before the regression (e.g. a brand-new
   subroutine) -> not a cost shift within this domain.
2. Domain cost >> regression's cost change (ratio above the exclusion
   bound) -> domain excluded as inconclusive; its seasonal wobble alone
   could hide the regression.
3. Domain cost change negligible vs the regression's cost change ->
   cost shift; filter the regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.core.types import DetectionVerdict, FilterReason, Regression
from repro.fleet.changes import ChangeLog
from repro.profiling.stacktrace import StackTrace
from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["CostDomain", "CostShiftDetector"]


@dataclass(frozen=True)
class CostDomain:
    """A group of subroutines within which cost shifts are likely.

    Attributes:
        name: Human-readable domain label (shows up in verdict details).
        kind: Provider that produced it (``"caller"``, ``"class"``,
            ``"metadata"``, ``"endpoint"``, ``"commit"``, ``"custom"``).
        members: Subroutine names composing the domain.
    """

    name: str
    kind: str
    members: frozenset

    def __post_init__(self) -> None:
        if not isinstance(self.members, frozenset):
            object.__setattr__(self, "members", frozenset(self.members))


DomainProvider = Callable[[Regression], List[CostDomain]]


class CostShiftDetector:
    """Filters regressions explained by cost shifts within a domain.

    Args:
        database: TSDB holding gCPU series (domain cost lookups).
        samples: Stack-trace history for caller-domain derivation.
        change_log: Change log for commit domains.
        exclusion_ratio: Rule 2 bound — domains whose absolute cost
            exceeds ``exclusion_ratio * |regression cost change|`` are
            inconclusive.  The bound also guards against a subtlety of
            relative metrics: a domain covering (almost) the whole
            process has a gCPU share that stays flat under *any*
            regression, so large domains must never be treated as
            cost-shift evidence.  The paper's 20%-domain vs
            0.005%-regression example corresponds to a ratio of 4000;
            we default to 20.
        negligible_fraction: Rule 3 bound — the domain's cost change is
            negligible when below this fraction of the regression's.
        extra_providers: Additional custom domain providers.
    """

    def __init__(
        self,
        database: TimeSeriesDatabase,
        samples: Optional[Sequence[StackTrace]] = None,
        change_log: Optional[ChangeLog] = None,
        exclusion_ratio: float = 20.0,
        negligible_fraction: float = 0.25,
        extra_providers: Optional[Sequence[DomainProvider]] = None,
    ) -> None:
        self.database = database
        self.samples = list(samples or [])
        self.change_log = change_log
        self.exclusion_ratio = exclusion_ratio
        self.negligible_fraction = negligible_fraction
        self._providers: List[DomainProvider] = [
            self._caller_domains,
            self._class_domains,
            self._metadata_domains,
            self._endpoint_domains,
            self._commit_domains,
        ]
        if extra_providers:
            self._providers.extend(extra_providers)

    def add_provider(self, provider: DomainProvider) -> None:
        """Register a custom cost-domain provider."""
        self._providers.append(provider)

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------

    def check(self, regression: Regression) -> DetectionVerdict:
        """Drop the regression if any domain reveals a pure cost shift."""
        if regression.context.subroutine is None:
            return DetectionVerdict.keep(detail="not a subroutine-level metric")
        regression_delta = abs(regression.magnitude)
        if regression_delta == 0:
            return DetectionVerdict.keep(detail="zero-magnitude regression")

        domains: List[CostDomain] = []
        for provider in self._providers:
            domains.extend(provider(regression))

        for domain in domains:
            outcome = self._evaluate_domain(regression, domain, regression_delta)
            if outcome is not None:
                return outcome
        return DetectionVerdict.keep(
            detail=f"no cost shift across {len(domains)} domains"
        )

    def _evaluate_domain(
        self,
        regression: Regression,
        domain: CostDomain,
        regression_delta: float,
    ) -> Optional[DetectionVerdict]:
        """Apply the three rules; a verdict means 'filter as cost shift'."""
        before, after = self._domain_cost(domain, regression)
        if before is None:
            return None  # Rule 1: domain has no pre-regression existence.
        if after is None:
            return None
        if before > self.exclusion_ratio * regression_delta:
            return None  # Rule 2: domain too large to be conclusive.
        domain_delta = abs(after - before)
        if domain_delta < self.negligible_fraction * regression_delta:
            return DetectionVerdict.drop(
                FilterReason.COST_SHIFT,
                detail=(
                    f"domain {domain.kind}:{domain.name} cost moved "
                    f"{domain_delta:.3g} vs regression {regression_delta:.3g}"
                ),
            )
        return None

    def _domain_cost(
        self, domain: CostDomain, regression: Regression
    ) -> tuple:
        """(pre, post) mean cost of the domain around the change time.

        Sums member gCPU series; pre covers the historic window through
        the change point, post covers the remainder of the analysis
        window plus the extended window.
        """
        view = regression.window
        interval = (view.now - view.historic_start) / max(
            1, view.full.size
        )
        change_time = view.analysis_start + regression.change_index * interval

        pre_total = post_total = 0.0
        pre_seen = post_seen = False
        for member in sorted(domain.members):
            series = self._series_for(regression.context.service, member)
            if series is None:
                continue
            pre_values = series.values_between(view.historic_start, change_time)
            post_values = series.values_between(change_time, view.now)
            if pre_values.size:
                pre_total += float(pre_values.mean())
                pre_seen = True
            if post_values.size:
                post_total += float(post_values.mean())
                post_seen = True
        return (pre_total if pre_seen else None, post_total if post_seen else None)

    def _series_for(self, service: str, member: str):
        """Resolve a domain member (subroutine or endpoint) to its series."""
        name = f"{service}.{member}.gcpu" if service else f"{member}.gcpu"
        series = self.database.get(name)
        if series is not None:
            return series
        matches = self.database.query(subroutine=member)
        if matches:
            return matches[0]
        matches = self.database.query(endpoint=member)
        return matches[0] if matches else None

    # ------------------------------------------------------------------
    # Default domain providers
    # ------------------------------------------------------------------

    def _caller_domains(self, regression: Regression) -> List[CostDomain]:
        """Each direct upstream caller is a domain of its own.

        A caller's gCPU covers the regressed subroutine *and* its
        siblings, so cost moving between siblings leaves the caller flat.
        """
        target = regression.context.subroutine
        callers: Set[str] = set()
        for trace in self.samples:
            callers.update(trace.callers_of(target))
        callers.discard("_start")
        return [
            CostDomain(name=caller, kind="caller", members=frozenset({caller}))
            for caller in sorted(callers)
        ]

    def _class_domains(self, regression: Regression) -> List[CostDomain]:
        """All subroutines sharing the regressed subroutine's class."""
        target = regression.context.subroutine
        parts = target.rsplit("::", 1)
        if len(parts) != 2:
            return []
        prefix = parts[0] + "::"
        members = {
            s.tags["subroutine"]
            for s in self.database.query(metric="gcpu")
            if s.tags.get("subroutine", "").startswith(prefix)
        }
        if len(members) < 2:
            return []
        return [CostDomain(name=parts[0], kind="class", members=frozenset(members))]

    def _metadata_domains(self, regression: Regression) -> List[CostDomain]:
        """Subroutines sharing the regression's metadata prefix."""
        metadata = regression.context.metadata
        if not metadata:
            return []
        prefix = metadata.split(":", 1)[0]
        members = {
            s.tags["subroutine"]
            for s in self.database.query(metric="gcpu")
            if s.tags.get("metadata", "").split(":", 1)[0] == prefix
            and "subroutine" in s.tags
        }
        if len(members) < 2:
            return []
        return [CostDomain(name=f"metadata:{prefix}", kind="metadata", members=frozenset(members))]

    def _endpoint_domains(self, regression: Regression) -> List[CostDomain]:
        """Endpoints whose names share the regressed endpoint's prefix."""
        endpoint = regression.context.endpoint
        if not endpoint:
            return []
        prefix = endpoint.rsplit("/", 1)[0] or "/"
        members = {
            s.tags["endpoint"]
            for s in self.database.query(metric="endpoint_gcpu")
            if s.tags.get("endpoint", "").startswith(prefix)
        }
        if len(members) < 2:
            return []
        return [CostDomain(name=f"endpoint:{prefix}", kind="endpoint", members=frozenset(members))]

    def _commit_domains(self, regression: Regression) -> List[CostDomain]:
        """All subroutines modified by one commit near the change time."""
        if self.change_log is None or regression.context.subroutine is None:
            return []
        view = regression.window
        candidates = self.change_log.deployed_between(
            view.analysis_start - (view.now - view.analysis_start),
            view.now,
        )
        domains = []
        for change in candidates:
            touched = set(change.modified_subroutines)
            if regression.context.subroutine in touched and len(touched) >= 2:
                domains.append(
                    CostDomain(
                        name=f"commit:{change.change_id}",
                        kind="commit",
                        members=frozenset(touched),
                    )
                )
        return domains
