"""A TAO-style graph database substrate.

TAO [Bronson et al., ATC '13] stores Facebook's social graph as typed
*objects* (nodes) and typed *associations* (directed edges), serving
point reads, association lists, and counts.  FBDetect monitors TAO's
query-processing throughput and, for serverless-platform traffic, the
per-data-type I/O it receives (§3).

This is a functional in-memory implementation: typed objects and
associations with the classic TAO API (``assoc_add``, ``assoc_get``,
``assoc_range``, ``assoc_count``, ``obj_get`` ...), a per-operation cost
model, and a metrics emitter producing the per-data-type time series the
detection pipeline scans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["TaoObject", "Association", "TaoStore", "TaoMetricsEmitter"]


@dataclass(frozen=True)
class TaoObject:
    """A typed graph node.

    Attributes:
        object_id: Globally unique id.
        otype: Object type name (e.g. ``"user"``, ``"post"``).
        data: Payload key/value pairs.
    """

    object_id: int
    otype: str
    data: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Association:
    """A typed directed edge ``id1 --atype--> id2``.

    Attributes:
        id1: Source object id.
        atype: Association type (e.g. ``"friend"``, ``"likes"``).
        id2: Destination object id.
        time: Association timestamp; range queries return newest first.
        data: Payload.
    """

    id1: int
    atype: str
    id2: int
    time: float
    data: Dict[str, str] = field(default_factory=dict)


#: Relative CPU cost of each operation type, used by the cost model.
_OPERATION_COSTS = {
    "obj_get": 1.0,
    "obj_add": 1.5,
    "assoc_get": 1.2,
    "assoc_range": 2.5,
    "assoc_count": 0.8,
    "assoc_add": 2.0,
    "assoc_delete": 1.8,
}


class TaoStore:
    """In-memory TAO: typed objects + time-ordered association lists.

    Every operation is counted per (operation, data type), feeding the
    per-data-type I/O metrics FBDetect monitors.
    """

    def __init__(self) -> None:
        self._objects: Dict[int, TaoObject] = {}
        self._assoc_lists: Dict[Tuple[int, str], List[Association]] = {}
        self._id_counter = itertools.count(1)
        self.operation_counts: Dict[Tuple[str, str], int] = {}
        self.operation_cost: Dict[Tuple[str, str], float] = {}
        #: Multiplier per data type — a "code change" regressing one data
        #: type's handling path scales its cost here.
        self.cost_multipliers: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _record(self, operation: str, data_type: str) -> None:
        key = (operation, data_type)
        self.operation_counts[key] = self.operation_counts.get(key, 0) + 1
        multiplier = self.cost_multipliers.get(data_type, 1.0)
        cost = _OPERATION_COSTS[operation] * multiplier
        self.operation_cost[key] = self.operation_cost.get(key, 0.0) + cost

    def regress_data_type(self, data_type: str, factor: float) -> None:
        """Scale a data type's per-operation cost (an injected regression).

        Raises:
            ValueError: On a non-positive factor.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.cost_multipliers[data_type] = (
            self.cost_multipliers.get(data_type, 1.0) * factor
        )

    def reset_accounting(self) -> Dict[Tuple[str, str], float]:
        """Return and clear the accumulated per-type costs (one interval)."""
        costs = dict(self.operation_cost)
        self.operation_counts.clear()
        self.operation_cost.clear()
        return costs

    # ------------------------------------------------------------------
    # Object API
    # ------------------------------------------------------------------

    def obj_add(self, otype: str, data: Optional[Dict[str, str]] = None) -> TaoObject:
        """Create an object; returns it with its assigned id."""
        obj = TaoObject(object_id=next(self._id_counter), otype=otype, data=dict(data or {}))
        self._objects[obj.object_id] = obj
        self._record("obj_add", otype)
        return obj

    def obj_get(self, object_id: int) -> Optional[TaoObject]:
        """Fetch an object by id (``None`` when absent)."""
        obj = self._objects.get(object_id)
        self._record("obj_get", obj.otype if obj else "unknown")
        return obj

    # ------------------------------------------------------------------
    # Association API
    # ------------------------------------------------------------------

    def assoc_add(
        self,
        id1: int,
        atype: str,
        id2: int,
        time: float,
        data: Optional[Dict[str, str]] = None,
    ) -> Association:
        """Add (or refresh) the association ``id1 --atype--> id2``."""
        assoc = Association(id1=id1, atype=atype, id2=id2, time=time, data=dict(data or {}))
        bucket = self._assoc_lists.setdefault((id1, atype), [])
        bucket[:] = [a for a in bucket if a.id2 != id2]
        bucket.append(assoc)
        bucket.sort(key=lambda a: -a.time)  # newest first, TAO order
        self._record("assoc_add", atype)
        return assoc

    def assoc_delete(self, id1: int, atype: str, id2: int) -> bool:
        """Remove an association; returns whether it existed."""
        bucket = self._assoc_lists.get((id1, atype), [])
        before = len(bucket)
        bucket[:] = [a for a in bucket if a.id2 != id2]
        self._record("assoc_delete", atype)
        return len(bucket) < before

    def assoc_get(self, id1: int, atype: str, id2: int) -> Optional[Association]:
        """Point lookup of one association."""
        self._record("assoc_get", atype)
        for assoc in self._assoc_lists.get((id1, atype), []):
            if assoc.id2 == id2:
                return assoc
        return None

    def assoc_range(
        self, id1: int, atype: str, offset: int = 0, limit: int = 50
    ) -> List[Association]:
        """Newest-first page of ``id1``'s ``atype`` associations."""
        self._record("assoc_range", atype)
        return self._assoc_lists.get((id1, atype), [])[offset : offset + limit]

    def assoc_count(self, id1: int, atype: str) -> int:
        """Number of ``atype`` associations out of ``id1``."""
        self._record("assoc_count", atype)
        return len(self._assoc_lists.get((id1, atype), []))


class TaoMetricsEmitter:
    """Turns per-interval TAO accounting into per-data-type series.

    Emits ``tao.{data_type}.io_cost`` (summed operation cost) and
    ``tao.{data_type}.io_count`` per collection interval, plus the
    overall ``tao.query_throughput`` — the metrics of Table 1's TAO rows.
    """

    def __init__(self, database: TimeSeriesDatabase, service: str = "tao") -> None:
        self.database = database
        self.service = service

    def ingest(self, timestamp: float, store: TaoStore, interval: float = 60.0) -> int:
        """Harvest and reset the store's accounting; returns points written."""
        counts = dict(store.operation_counts)
        costs = store.reset_accounting()

        per_type_cost: Dict[str, float] = {}
        per_type_count: Dict[str, int] = {}
        for (operation, data_type), cost in costs.items():
            per_type_cost[data_type] = per_type_cost.get(data_type, 0.0) + cost
        for (operation, data_type), count in counts.items():
            per_type_count[data_type] = per_type_count.get(data_type, 0) + count

        written = 0
        for data_type in sorted(per_type_cost):
            self.database.write(
                f"{self.service}.{data_type}.io_cost",
                timestamp,
                per_type_cost[data_type],
                {"service": self.service, "data_type": data_type, "metric": "io_cost"},
            )
            self.database.write(
                f"{self.service}.{data_type}.io_count",
                timestamp,
                float(per_type_count.get(data_type, 0)),
                {"service": self.service, "data_type": data_type, "metric": "io_count"},
            )
            written += 2

        total_ops = sum(per_type_count.values())
        self.database.write(
            f"{self.service}.query_throughput",
            timestamp,
            total_ops / interval,
            {"service": self.service, "metric": "throughput"},
        )
        return written + 1
