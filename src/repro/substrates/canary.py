"""Canary-test analysis: control-vs-test statistical comparison.

§6.2 notes that many of FBDetect's reports "match well with the same
magnitudes and similar timings of regressions recorded by Meta's
canary-test tool" — the pre-production counterpart that compares a
canary server group running new code against a control group running
old code.  This substrate implements that comparison: Welch's t-test
over per-server metric samples, with an effect-size estimate and
confidence interval, so examples and tests can corroborate FBDetect's
in-production detections exactly the way §6.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as sp_stats

__all__ = ["CanaryVerdict", "CanaryAnalysis", "compare_canary"]


@dataclass(frozen=True)
class CanaryVerdict:
    """Outcome of one control-vs-canary comparison.

    Attributes:
        regressed: Whether the canary is statistically worse.
        relative_delta: Canary mean relative to control mean, minus 1
            (``+0.02`` = canary is 2% more expensive).
        confidence_interval: 95% CI on ``relative_delta``.
        p_value: Welch's t-test two-sided p-value.
        control_mean: Control group's sample mean.
        canary_mean: Canary group's sample mean.
    """

    regressed: bool
    relative_delta: float
    confidence_interval: tuple
    p_value: float
    control_mean: float
    canary_mean: float


class CanaryAnalysis:
    """Compares a canary group's samples against a control group's.

    Args:
        significance_level: Two-sided rejection level for the t-test.
        min_relative_delta: Smallest relative delta that counts as a
            regression even when statistically significant (guards
            against flagging measurement-resolution differences on huge
            sample counts).
        higher_is_worse: Metric orientation.
    """

    def __init__(
        self,
        significance_level: float = 0.01,
        min_relative_delta: float = 0.0,
        higher_is_worse: bool = True,
    ) -> None:
        if not 0 < significance_level < 1:
            raise ValueError("significance_level must be in (0, 1)")
        if min_relative_delta < 0:
            raise ValueError("min_relative_delta must be >= 0")
        self.significance_level = significance_level
        self.min_relative_delta = min_relative_delta
        self.higher_is_worse = higher_is_worse

    def compare(
        self,
        control: Sequence[float],
        canary: Sequence[float],
    ) -> CanaryVerdict:
        """Welch's t-test comparison of the two sample groups.

        Raises:
            ValueError: When either group has fewer than 2 samples.
        """
        control_arr = np.asarray(control, dtype=float)
        canary_arr = np.asarray(canary, dtype=float)
        if control_arr.size < 2 or canary_arr.size < 2:
            raise ValueError("each group needs at least 2 samples")

        control_mean = float(control_arr.mean())
        canary_mean = float(canary_arr.mean())
        t_stat, p_value = sp_stats.ttest_ind(canary_arr, control_arr, equal_var=False)

        if control_mean != 0:
            relative_delta = canary_mean / control_mean - 1.0
        else:
            relative_delta = float("inf") if canary_mean != 0 else 0.0

        # 95% CI on the mean difference via Welch degrees of freedom,
        # expressed relative to the control mean.
        se = float(
            np.sqrt(
                control_arr.var(ddof=1) / control_arr.size
                + canary_arr.var(ddof=1) / canary_arr.size
            )
        )
        df = self._welch_df(control_arr, canary_arr)
        margin = float(sp_stats.t.ppf(0.975, df)) * se
        diff = canary_mean - control_mean
        if control_mean != 0:
            ci = ((diff - margin) / abs(control_mean), (diff + margin) / abs(control_mean))
        else:
            ci = (float("-inf"), float("inf"))

        worse = relative_delta > 0 if self.higher_is_worse else relative_delta < 0
        regressed = (
            bool(p_value < self.significance_level)
            and worse
            and abs(relative_delta) >= self.min_relative_delta
        )
        return CanaryVerdict(
            regressed=regressed,
            relative_delta=float(relative_delta),
            confidence_interval=ci,
            p_value=float(p_value),
            control_mean=control_mean,
            canary_mean=canary_mean,
        )

    @staticmethod
    def _welch_df(a: np.ndarray, b: np.ndarray) -> float:
        va, vb = a.var(ddof=1) / a.size, b.var(ddof=1) / b.size
        denom = va ** 2 / (a.size - 1) + vb ** 2 / (b.size - 1)
        if denom <= 0:
            return float(a.size + b.size - 2)
        return float((va + vb) ** 2 / denom)


def compare_canary(
    control: Sequence[float],
    canary: Sequence[float],
    significance_level: float = 0.01,
    higher_is_worse: bool = True,
) -> CanaryVerdict:
    """One-shot convenience wrapper around :class:`CanaryAnalysis`."""
    analysis = CanaryAnalysis(
        significance_level=significance_level, higher_is_worse=higher_is_worse
    )
    return analysis.compare(control, canary)
