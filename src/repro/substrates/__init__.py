"""Downstream-system substrates the paper's workloads depend on.

- :mod:`repro.substrates.tao` — a TAO-style graph store (objects and
  associations) with per-data-type I/O metrics.  PythonFaaS/FrontFaaS
  workloads detect "per-data-type I/O regressions to the downstream
  database" (§3); this substrate produces those series.
- :mod:`repro.substrates.kraken` — a Kraken-style load tester that
  measures a service's per-server maximum throughput, the input to
  Capacity Triage's supply-side detection (§3).
- :mod:`repro.substrates.canary` — canary-test analysis (control vs
  canary server groups, Welch's t-test), the pre-production tool whose
  findings §6.2 uses to corroborate FBDetect's reports.
"""

from repro.substrates.canary import CanaryAnalysis, CanaryVerdict, compare_canary
from repro.substrates.kraken import KrakenLoadTester, LoadTestResult, ThroughputModel
from repro.substrates.tao import Association, TaoMetricsEmitter, TaoObject, TaoStore

__all__ = [
    "Association",
    "CanaryAnalysis",
    "CanaryVerdict",
    "KrakenLoadTester",
    "LoadTestResult",
    "TaoMetricsEmitter",
    "TaoObject",
    "TaoStore",
    "ThroughputModel",
    "compare_canary",
]
