"""A Kraken-style load tester.

Kraken [Veeraraghavan et al., OSDI '16] finds a service's per-server
maximum throughput by shifting live traffic onto test servers until a
health metric (latency, error rate) degrades past a limit.  Capacity
Triage (§3) relies on it: an unexpected drop in measured max throughput
is a supply-side regression.

:class:`KrakenLoadTester` reproduces the control loop against a
:class:`ThroughputModel` — a latency/error model of one server with a
capacity knee — ramping offered load until health limits trip, then
reporting the sustained maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["ThroughputModel", "LoadTestResult", "KrakenLoadTester"]


@dataclass
class ThroughputModel:
    """A single server's response to offered load.

    Latency follows an M/M/1-style blow-up near capacity; errors appear
    past saturation.  A code regression reduces ``capacity``.

    Attributes:
        capacity: Requests/second the server can sustain.
        base_latency_ms: Latency at negligible load.
        error_knee: Fraction of capacity beyond which errors grow.
    """

    capacity: float
    base_latency_ms: float = 5.0
    error_knee: float = 0.95

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")

    def latency_ms(self, offered_rps: float, rng: Optional[np.random.Generator] = None) -> float:
        """Mean latency at ``offered_rps`` (noisy when ``rng`` given)."""
        utilization = min(offered_rps / self.capacity, 0.999)
        latency = self.base_latency_ms / (1.0 - utilization)
        if rng is not None:
            latency *= 1.0 + abs(float(rng.normal(0.0, 0.03)))
        return latency

    def error_rate(self, offered_rps: float) -> float:
        """Error fraction at ``offered_rps`` (0 below the knee)."""
        knee_rps = self.error_knee * self.capacity
        if offered_rps <= knee_rps:
            return 0.0
        overload = (offered_rps - knee_rps) / max(self.capacity - knee_rps, 1e-9)
        return min(1.0, 0.5 * overload)

    def regress(self, factor: float) -> None:
        """Shrink capacity by ``factor`` (0.9 = lose 10%).

        Raises:
            ValueError: Unless ``0 < factor <= 1``.
        """
        if not 0 < factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        self.capacity *= factor


@dataclass(frozen=True)
class LoadTestResult:
    """Outcome of one Kraken run against one server.

    Attributes:
        max_throughput: Highest offered load sustained within limits.
        limiting_metric: Which health limit stopped the ramp
            (``"latency"``, ``"error_rate"``, or ``"ceiling"``).
        steps: Offered loads probed, in order.
    """

    max_throughput: float
    limiting_metric: str
    steps: List[float]


class KrakenLoadTester:
    """Ramps load until a health limit trips.

    Args:
        latency_limit_ms: Abort when mean latency exceeds this.
        error_limit: Abort when the error fraction exceeds this.
        step_fraction: Ramp increment as a fraction of current load.
        start_rps: Initial offered load.
        max_steps: Safety cap on ramp length.
    """

    def __init__(
        self,
        latency_limit_ms: float = 100.0,
        error_limit: float = 0.01,
        step_fraction: float = 0.05,
        start_rps: float = 50.0,
        max_steps: int = 200,
    ) -> None:
        if step_fraction <= 0:
            raise ValueError("step_fraction must be positive")
        self.latency_limit_ms = latency_limit_ms
        self.error_limit = error_limit
        self.step_fraction = step_fraction
        self.start_rps = start_rps
        self.max_steps = max_steps

    def run(
        self,
        model: ThroughputModel,
        rng: Optional[np.random.Generator] = None,
    ) -> LoadTestResult:
        """One benchmark run: ramp offered load until a limit trips."""
        offered = self.start_rps
        sustained = 0.0
        steps: List[float] = []
        limiting = "ceiling"
        for _ in range(self.max_steps):
            steps.append(offered)
            latency = model.latency_ms(offered, rng)
            errors = model.error_rate(offered)
            if latency > self.latency_limit_ms:
                limiting = "latency"
                break
            if errors > self.error_limit:
                limiting = "error_rate"
                break
            sustained = offered
            offered *= 1.0 + self.step_fraction
        return LoadTestResult(
            max_throughput=sustained, limiting_metric=limiting, steps=steps
        )

    def benchmark_series(
        self,
        database: TimeSeriesDatabase,
        service: str,
        model: ThroughputModel,
        timestamps: List[float],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Run one load test per timestamp, writing the CT-supply series.

        The emitted ``{service}.max_throughput`` series (tagged
        ``metric="max_throughput"``) is what a CT-supply configuration
        scans for unexpected drops.
        """
        for timestamp in timestamps:
            result = self.run(model, rng)
            database.write(
                f"{service}.max_throughput",
                timestamp,
                result.max_throughput,
                {"service": service, "metric": "max_throughput"},
            )
