"""Baseline anomaly-detection algorithms FBDetect is compared against.

- :mod:`repro.baselines.egads` — reimplementations of the Yahoo EGADS
  algorithm families used in the paper's Figure 8: K-Sigma, adaptive
  kernel density, and extreme low density, each with a sensitivity
  parameter sweeping the FP/FN tradeoff.
- :mod:`repro.baselines.naive` — plain change-point detection with no
  transient filtering (the §1 strawman with a 99.7% false-positive rate).
- :mod:`repro.baselines.scalene_like` — a Python-level-only profiler
  that can merely approximate native time (the §4 Scalene comparison).
"""

from repro.baselines.egads import (
    AdaptiveKernelDensityModel,
    EgadsModel,
    ExtremeLowDensityModel,
    KSigmaModel,
    sweep_tradeoff,
)
from repro.baselines.naive import NaiveChangePointDetector
from repro.baselines.scalene_like import ScaleneLikeProfiler, attribution_error

__all__ = [
    "AdaptiveKernelDensityModel",
    "EgadsModel",
    "ExtremeLowDensityModel",
    "KSigmaModel",
    "NaiveChangePointDetector",
    "ScaleneLikeProfiler",
    "attribution_error",
    "sweep_tradeoff",
]
