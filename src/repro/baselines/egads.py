"""EGADS-style anomaly-detection baselines (Figure 8, §6.5).

Yahoo's EGADS [Laptev et al., KDD '15] offers multiple anomaly-detection
models that compare an analysis window against a historic baseline and
flag windows whose values are improbable under the baseline's
distribution.  Each model exposes one *sensitivity* parameter; tightening
it trades false negatives for false positives, which is exactly the
tradeoff Figure 8 sweeps.

Implemented families:

- :class:`KSigmaModel` — flags when the analysis mean deviates from the
  historic mean by more than ``k`` historic standard deviations.
- :class:`AdaptiveKernelDensityModel` — Gaussian KDE over the historic
  window with a data-adaptive bandwidth; flags when the mean density of
  analysis points falls below a quantile of historic self-density.
- :class:`ExtremeLowDensityModel` — flags when the *fraction* of
  analysis points lying in near-zero-density regions of the historic
  distribution exceeds the sensitivity.

These are deliberately window-level anomaly detectors without FBDetect's
went-away/seasonality machinery: transient issues that fall inside the
analysis window look identical to true regressions, which is why they
"cannot simultaneously reduce both false negatives and false positives."
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "EgadsModel",
    "KSigmaModel",
    "AdaptiveKernelDensityModel",
    "ExtremeLowDensityModel",
    "sweep_tradeoff",
    "TradeoffPoint",
]


class EgadsModel(abc.ABC):
    """Interface of an EGADS-style window anomaly detector.

    Args:
        sensitivity: The model's tunable parameter; semantics are
            model-specific but in every model a *lower* value flags more
            windows (more FPs, fewer FNs).
    """

    def __init__(self, sensitivity: float) -> None:
        self.sensitivity = sensitivity

    @abc.abstractmethod
    def is_anomalous(self, historic: Sequence[float], analysis: Sequence[float]) -> bool:
        """Whether the analysis window is anomalous against the baseline."""

    @classmethod
    @abc.abstractmethod
    def sensitivity_range(cls) -> np.ndarray:
        """A reasonable sweep of the sensitivity parameter."""


class KSigmaModel(EgadsModel):
    """Flag when ``|mean(analysis) - mean(historic)| > k * std(historic)``."""

    def is_anomalous(self, historic: Sequence[float], analysis: Sequence[float]) -> bool:
        h = np.asarray(historic, dtype=float)
        a = np.asarray(analysis, dtype=float)
        if h.size == 0 or a.size == 0:
            return False
        std = float(h.std())
        if std == 0:
            return bool(abs(float(a.mean()) - float(h.mean())) > 0)
        return abs(float(a.mean()) - float(h.mean())) > self.sensitivity * std

    @classmethod
    def sensitivity_range(cls) -> np.ndarray:
        return np.array([0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0])


class AdaptiveKernelDensityModel(EgadsModel):
    """Gaussian KDE with Silverman's adaptive bandwidth.

    The analysis window is anomalous when the mean historic-density of
    its points falls below the ``sensitivity`` quantile of the historic
    points' own densities (leave-in estimate).
    """

    def is_anomalous(self, historic: Sequence[float], analysis: Sequence[float]) -> bool:
        h = np.asarray(historic, dtype=float)
        a = np.asarray(analysis, dtype=float)
        if h.size < 5 or a.size == 0:
            return False
        bandwidth = self._bandwidth(h)
        self_density = self._density(h, h, bandwidth)
        analysis_density = self._density(a, h, bandwidth)
        cutoff = float(np.quantile(self_density, self.sensitivity))
        return float(analysis_density.mean()) < cutoff

    @staticmethod
    def _bandwidth(h: np.ndarray) -> float:
        # Silverman's rule; floor avoids a zero bandwidth on constants.
        sigma = float(h.std())
        return max(1.06 * sigma * h.size ** (-1 / 5), 1e-12)

    @staticmethod
    def _density(points: np.ndarray, reference: np.ndarray, bandwidth: float) -> np.ndarray:
        z = (points[:, None] - reference[None, :]) / bandwidth
        kernel = np.exp(-0.5 * z * z) / np.sqrt(2 * np.pi)
        return kernel.mean(axis=1) / bandwidth

    @classmethod
    def sensitivity_range(cls) -> np.ndarray:
        return np.array([0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.35, 0.5])


class ExtremeLowDensityModel(EgadsModel):
    """Flag when too many analysis points sit in extreme low density.

    A point is "extreme low density" when it lies outside the historic
    window's [q, 1-q] quantile band for a small fixed ``q``; the window
    is anomalous when the fraction of such points exceeds
    ``sensitivity``.
    """

    EXTREME_QUANTILE = 0.02

    def is_anomalous(self, historic: Sequence[float], analysis: Sequence[float]) -> bool:
        h = np.asarray(historic, dtype=float)
        a = np.asarray(analysis, dtype=float)
        if h.size < 5 or a.size == 0:
            return False
        lo = float(np.quantile(h, self.EXTREME_QUANTILE))
        hi = float(np.quantile(h, 1 - self.EXTREME_QUANTILE))
        extreme_fraction = float(((a < lo) | (a > hi)).mean())
        return extreme_fraction > self.sensitivity

    @classmethod
    def sensitivity_range(cls) -> np.ndarray:
        return np.array([0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9])


@dataclass(frozen=True)
class TradeoffPoint:
    """One (sensitivity, FP rate, FN rate) point of a Figure 8 curve."""

    sensitivity: float
    false_positive_rate: float
    false_negative_rate: float


def sweep_tradeoff(
    model_class,
    positives: Sequence[Tuple[np.ndarray, np.ndarray]],
    negatives: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> List[TradeoffPoint]:
    """Sweep a model's sensitivity over labelled window pairs.

    Args:
        model_class: An :class:`EgadsModel` subclass.
        positives: ``(historic, analysis)`` pairs containing true
            regressions.
        negatives: Pairs without regressions (including transients).

    Returns:
        One :class:`TradeoffPoint` per sensitivity value, mirroring the
        paper's Figure 8 axes.
    """
    points = []
    for sensitivity in model_class.sensitivity_range():
        model = model_class(float(sensitivity))
        fn = sum(1 for h, a in positives if not model.is_anomalous(h, a))
        fp = sum(1 for h, a in negatives if model.is_anomalous(h, a))
        points.append(
            TradeoffPoint(
                sensitivity=float(sensitivity),
                false_positive_rate=fp / len(negatives) if negatives else 0.0,
                false_negative_rate=fn / len(positives) if positives else 0.0,
            )
        )
    return points
