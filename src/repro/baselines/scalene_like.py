"""A Scalene-style Python-level profiler baseline (§4 comparison).

The paper positions PyPerf against Scalene: "the state-of-the-art Python
profiler, Scalene, can only approximate the time spent in C/C++
libraries since its Python-level profiling cannot reach into C/C++
code."  This baseline reproduces that limitation faithfully so the
difference is measurable:

- it samples only the *Python* virtual call stack (it cannot walk the
  native stack at all);
- time a thread spends inside a native library is observed merely as
  "the interpreter did not advance" and must be attributed by heuristic
  to the innermost Python frame that made the native call.

Against the same simulated process, PyPerf's merged stacks name the
native frames exactly, while this baseline folds all native time into
Python callers — overstating their self cost and losing the native
breakdown entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.profiling.pyperf import SimulatedCPythonProcess
from repro.profiling.stacktrace import Frame, StackTrace

__all__ = ["ScaleneLikeProfiler", "attribution_error"]


@dataclass(frozen=True)
class _PythonOnlySample:
    """What a Python-level profiler can observe at one sample instant."""

    python_stack: Tuple[str, ...]
    in_native_code: bool


class ScaleneLikeProfiler:
    """Samples only the Python virtual call stack.

    Native frames are invisible; when the process is executing native
    code, the sample attributes that time to the innermost Python frame
    (Scalene's "C time" bucket, folded into its caller).
    """

    def __init__(self) -> None:
        self.samples_taken = 0

    def observe(self, process: SimulatedCPythonProcess) -> _PythonOnlySample:
        """One observation: Python frames only, plus a native-code bit."""
        self.samples_taken += 1
        python_stack = tuple(frame.function for frame in process.vcs)
        leaf = process.system_stack[-1] if process.system_stack else None
        in_native = leaf is not None and leaf.kind == "native"
        return _PythonOnlySample(python_stack=python_stack, in_native_code=in_native)

    def sample(self, process: SimulatedCPythonProcess) -> StackTrace:
        """The reconstructed trace: Python frames, native time folded in.

        The returned trace ends at the innermost Python frame even when
        the process was actually inside a C library — the approximation
        the paper calls out.
        """
        observation = self.observe(process)
        frames = tuple(Frame(name, kind="python") for name in observation.python_stack)
        return StackTrace(frames=(Frame("_start", kind="system"),) + frames)


def attribution_error(
    merged_samples: Sequence[StackTrace],
    python_only_samples: Sequence[StackTrace],
) -> Dict[str, float]:
    """Per-frame gCPU attribution difference between the two profilers.

    Positive values mean the Python-level profiler *over*-attributes the
    frame (it absorbed invisible native time); native frames appear with
    negative values (the Python-level profiler never sees them).

    Returns:
        ``{subroutine: gcpu_python_only - gcpu_merged}`` over the union
        of frames, omitting frames where the two agree exactly.
    """
    from repro.profiling.gcpu import compute_gcpu

    merged = compute_gcpu(merged_samples).as_dict()
    python_only = compute_gcpu(python_only_samples).as_dict()
    errors: Dict[str, float] = {}
    for name in set(merged) | set(python_only):
        delta = python_only.get(name, 0.0) - merged.get(name, 0.0)
        if delta != 0.0:
            errors[name] = delta
    return errors
