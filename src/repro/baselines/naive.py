"""Naive change-point detection without transient filtering.

The §1 strawman: "typical change-point detection algorithms would result
in a 99.7% false positive rate in our environment."  This detector flags
any validated change point in the analysis window — no went-away,
seasonality, threshold, or dedup stages — so transient issues all become
reports.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.change_point import ChangePointCandidate, ChangePointDetector

__all__ = ["NaiveChangePointDetector"]


class NaiveChangePointDetector:
    """Reports every statistically significant mean increase.

    Args:
        significance_level: LRT rejection level.
    """

    def __init__(self, significance_level: float = 0.01) -> None:
        self._detector = ChangePointDetector(significance_level=significance_level)

    def detect(self, analysis: Sequence[float]) -> Optional[ChangePointCandidate]:
        """The validated change point of ``analysis``, any direction.

        A generic change-point detector has no notion of metric
        orientation or recovery — every statistically significant mean
        shift becomes a report, which is exactly why it floods on
        transients.
        """
        return self._detector.detect(analysis)

    def is_anomalous(self, historic: Sequence[float], analysis: Sequence[float]) -> bool:
        """EGADS-compatible interface; the baseline is ignored entirely."""
        return self.detect(analysis) is not None
