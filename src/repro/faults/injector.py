"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One injector lives in the *parent* service process and makes every
injection decision there, under a lock, from per-spec seeded RNG
streams — worker processes never decide anything, they only execute
directives the parent hands them (``("crash", 0.0)``/``("hang", s)``
tuples piped through :func:`repro.service.parallel._advance_shard`).
That keeps a chaos run deterministic regardless of process scheduling.

Decision model, per site invocation:

1. every spec whose site and shard filter match sees its private
   invocation counter advance;
2. a spec is *eligible* once its counter exceeds ``after`` and while its
   ``times`` budget is unspent;
3. an eligible spec fires when its seeded RNG stream passes
   ``probability`` — the first firing spec wins the invocation.

Every firing increments ``faults.injected`` (and a per-kind counter) on
the wired metrics registry and records an event on the wired
:class:`~repro.obs.spans.EventLog`, so injected chaos is always visible
on ``/metrics`` and ``/faults``.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.logging import get_logger

__all__ = ["FaultInjector", "InjectedFault"]

_log = get_logger("repro.faults")


class InjectedFault(RuntimeError):
    """Raised at raising-kind hook points (flush errors, flusher death).

    Catching code treats it like any other runtime failure — the class
    exists so tests and logs can tell injected chaos from real bugs.
    """


class _SpecState:
    """Mutable bookkeeping for one spec (the plan itself stays frozen)."""

    __slots__ = ("spec", "seen", "fired", "rng")

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        self.seen = 0
        self.fired = 0
        self.rng = random.Random(f"repro.faults:{seed}:{index}:{spec.kind.value}")

    def matches(self, site: str, shard: Optional[int]) -> bool:
        if self.spec.site != site:
            return False
        return self.spec.shard is None or shard is None or self.spec.shard == shard

    def consider(self) -> bool:
        """Advance this spec's invocation counter; report whether it fires."""
        self.seen += 1
        if self.seen <= self.spec.after:
            return False
        if self.spec.times is not None and self.fired >= self.spec.times:
            return False
        if self.spec.probability < 1.0 and self.rng.random() >= self.spec.probability:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """Executes a fault plan at the service's hook points.

    Args:
        plan: The schedule to execute.
        metrics: Optional registry-like object (``inc(name, n)``) for
            the ``faults.injected`` counters; also settable later via
            :meth:`wire`.
        events: Optional :class:`~repro.obs.spans.EventLog` receiving
            one event per fired fault.

    Thread-safe: hook points are called from the advance thread, the
    background flushers, and checkpoint writers concurrently.
    """

    def __init__(
        self,
        plan: FaultPlan,
        metrics: Optional[object] = None,
        events: Optional[object] = None,
    ) -> None:
        self.plan = plan
        self.metrics = metrics
        self.events = events
        self._lock = threading.Lock()
        self._states = [
            _SpecState(spec, plan.seed, index)
            for index, spec in enumerate(plan.specs)
        ]
        # Cached so the per-sample ingest path pays one attribute read,
        # not a spec scan, when the plan has no data faults (the common
        # case, and all pre-existing plans).
        self.has_data_faults = any(
            spec.site.startswith("data.") for spec in plan.specs
        )

    def wire(self, metrics: Optional[object] = None, events: Optional[object] = None) -> None:
        """Attach the service's metrics registry and event log."""
        if metrics is not None:
            self.metrics = metrics
        if events is not None:
            self.events = events

    # -- hook points -----------------------------------------------------

    def worker_directive(self, shard: Optional[int] = None) -> Optional[Tuple[str, float]]:
        """Site ``worker.advance``: a directive for one shard's worker.

        Returns ``("crash", 0.0)``, ``("hang", seconds)``, or ``None``.
        Decided in the parent so retries re-consult the plan — a spec
        with a spent budget stops firing and the retry succeeds.
        """
        spec = self._fire("worker.advance", shard)
        if spec is None:
            return None
        if spec.kind is FaultKind.WORKER_CRASH:
            return ("crash", 0.0)
        return ("hang", spec.hang_seconds)

    def maybe_raise(self, site: str, shard: Optional[int] = None) -> None:
        """Sites ``ingest.flush`` / ``flusher``: raise if a spec fires.

        Raises:
            InjectedFault: When a matching spec fires.
        """
        spec = self._fire(site, shard)
        if spec is not None:
            raise InjectedFault(f"injected {spec.kind.value} at {site} (shard={shard})")

    def corrupt_payload(self, site: str, payload: bytes) -> Optional[bytes]:
        """Sites ``checkpoint.blob`` / ``checkpoint.manifest``.

        Returns the bytes to write *instead of* ``payload`` when a spec
        fires (flipped byte or truncation), else ``None``.  The caller
        records the checksum of the pristine payload, so the damage is
        latent until load time — like real disk corruption.
        """
        spec = self._fire(site, None)
        if spec is None:
            return None
        if spec.kind is FaultKind.CHECKPOINT_TRUNCATE:
            return payload[: max(1, len(payload) // 2)]
        mutated = bytearray(payload)
        if mutated:
            mutated[len(mutated) // 2] ^= 0xFF
        return bytes(mutated)

    def data_directive(self, shard: Optional[int] = None) -> Optional[FaultKind]:
        """Sites ``data.corrupt`` / ``data.reorder`` / ``data.gap``.

        One ingested sample is one invocation of the whole data plane:
        each data-fault spec sees it (counters advance together) and the
        first firing spec wins — at most one data fault per sample,
        mirroring :meth:`_fire` across the three sites.

        Returns:
            The winning :class:`FaultKind` (``DATA_CORRUPT`` /
            ``DATA_REORDER`` / ``DATA_GAP``) or ``None``.
        """
        with self._lock:
            winner = None
            for state in self._states:
                if not state.spec.site.startswith("data."):
                    continue
                if state.spec.shard is not None and shard is not None:
                    if state.spec.shard != shard:
                        continue
                if winner is None and state.consider():
                    winner = state.spec
                # Later matching specs do not see this sample once a
                # winner fired: one sample, at most one data fault.
        if winner is not None:
            self._record(winner, winner.site, shard)
            return winner.kind
        return None

    def clock_skew(self) -> float:
        """Site ``clock``: the current wall-clock offset in seconds.

        A skew spec fires once (per budget unit) and then *stays
        applied* — an NTP step moves the clock, it does not tick it —
        so the sum of all fired skews is the live offset.
        """
        with self._lock:
            offset = 0.0
            for state in self._states:
                if state.spec.kind is not FaultKind.CLOCK_SKEW:
                    continue
                state.seen += 1
                if (
                    state.fired == 0
                    and state.seen > state.spec.after
                    and (
                        state.spec.probability >= 1.0
                        or state.rng.random() < state.spec.probability
                    )
                ):
                    state.fired = 1
                    self._record(state.spec, "clock", None)
                if state.fired:
                    offset += state.spec.skew_seconds
            return offset

    # -- introspection ---------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Fired-fault counts per kind (only kinds that fired)."""
        with self._lock:
            totals: Dict[str, int] = {}
            for state in self._states:
                if state.fired:
                    key = state.spec.kind.value
                    totals[key] = totals.get(key, 0) + state.fired
            return totals

    def exhausted(self) -> bool:
        """Whether every finite-budget spec has spent its budget."""
        with self._lock:
            return all(
                state.spec.times is None or state.fired >= state.spec.times
                for state in self._states
                if state.spec.kind is not FaultKind.CLOCK_SKEW
            )

    def snapshot(self) -> dict:
        """JSON view of the plan and its execution state (``/faults``)."""
        with self._lock:
            return {
                "seed": self.plan.seed,
                "specs": [
                    {
                        **state.spec.to_dict(),
                        "seen": state.seen,
                        "fired": state.fired,
                    }
                    for state in self._states
                ],
                "injected_total": sum(state.fired for state in self._states),
            }

    # -- internals -------------------------------------------------------

    def _fire(self, site: str, shard: Optional[int]) -> Optional[FaultSpec]:
        with self._lock:
            winner: Optional[FaultSpec] = None
            for state in self._states:
                if not state.matches(site, shard):
                    continue
                if winner is None and state.consider():
                    winner = state.spec
                elif winner is None:
                    continue
                # Later matching specs do not see this invocation once a
                # winner fired: one invocation, at most one fault.
        if winner is not None:
            self._record(winner, site, shard)
        return winner

    def _record(self, spec: FaultSpec, site: str, shard: Optional[int]) -> None:
        if self.metrics is not None:
            self.metrics.inc("faults.injected")
            self.metrics.inc(f"faults.injected.{spec.kind.value}")
        if self.events is not None:
            self.events.record(
                "fault_injected", fault=spec.kind.value, site=site, shard=shard
            )
        _log.info("fault injected", kind=spec.kind.value, site=site, shard=shard)
