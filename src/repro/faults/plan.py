"""Fault plans: what to break, where, and how often.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultSpec`
entries.  Each spec targets one *site* — a named hook point in the
service (see :data:`SITES`) — and fires on matching invocations of that
site, subject to its ``after`` offset, ``times`` budget, and
``probability``.  Plans are plain data: they serialize to JSON for the
CLI's ``--fault-plan`` flag and for CI chaos-seed matrices, and
:meth:`FaultPlan.chaos` generates a randomized-but-reproducible schedule
from a single integer seed.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "SITES"]


class FaultKind(str, enum.Enum):
    """Every fault the injector knows how to execute."""

    #: The worker process advancing a shard dies hard (``os._exit``),
    #: which surfaces in the parent as ``BrokenProcessPool``.
    WORKER_CRASH = "worker_crash"
    #: The worker process sleeps past the per-shard advance deadline.
    ADVANCE_HANG = "advance_hang"
    #: One TSDB batch write raises mid-flush.
    FLUSH_ERROR = "flush_error"
    #: A background flusher iteration dies.
    FLUSHER_DEATH = "flusher_death"
    #: A checkpoint shard blob is written with a flipped byte (the
    #: manifest records the true SHA-256, so the corruption is latent
    #: until load time — exactly like real disk corruption).
    CHECKPOINT_CORRUPT = "checkpoint_corrupt"
    #: A checkpoint shard blob is written truncated to half its size.
    CHECKPOINT_TRUNCATE = "checkpoint_truncate"
    #: A checkpoint manifest is written corrupted.
    MANIFEST_CORRUPT = "manifest_corrupt"
    #: The service's wall clock steps by ``skew_seconds`` (an NTP step);
    #: monotonic readings are unaffected, which is the point under test.
    CLOCK_SKEW = "clock_skew"
    #: One ingested sample's value is replaced with NaN before it
    #: reaches admission (a collector emitting garbage).
    DATA_CORRUPT = "data_corrupt"
    #: One ingested sample is delivered late, after the next sample of
    #: its series (a clock-skewed host shipping an out-of-order batch).
    DATA_REORDER = "data_reorder"
    #: One ingested sample is silently dropped before admission (a host
    #: restart losing samples).
    DATA_GAP = "data_gap"


#: Hook-point site for each fault kind.  Sites are the vocabulary the
#: injector and the service share: the service asks "anything for
#: ``worker.advance`` on shard 3?" and the injector answers from the
#: plan without the service knowing kinds exist.
SITES: Dict[FaultKind, str] = {
    FaultKind.WORKER_CRASH: "worker.advance",
    FaultKind.ADVANCE_HANG: "worker.advance",
    FaultKind.FLUSH_ERROR: "ingest.flush",
    FaultKind.FLUSHER_DEATH: "flusher",
    FaultKind.CHECKPOINT_CORRUPT: "checkpoint.blob",
    FaultKind.CHECKPOINT_TRUNCATE: "checkpoint.blob",
    FaultKind.MANIFEST_CORRUPT: "checkpoint.manifest",
    FaultKind.CLOCK_SKEW: "clock",
    FaultKind.DATA_CORRUPT: "data.corrupt",
    FaultKind.DATA_REORDER: "data.reorder",
    FaultKind.DATA_GAP: "data.gap",
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: What breaks (fixes the site; see :data:`SITES`).
        shard: Only fire for this shard id (``None`` = any shard).
        times: Firing budget; ``None`` means unlimited.  Budgets are
            what let chaos runs *recover*: once a crash spec's budget is
            spent, retries of the same advance succeed.
        after: Skip the first ``after`` matching invocations of the
            site before becoming eligible.
        probability: Chance of firing per eligible invocation, drawn
            from the spec's seeded RNG stream (1.0 = always).
        hang_seconds: Sleep duration for :attr:`FaultKind.ADVANCE_HANG`.
        skew_seconds: Wall-clock step for :attr:`FaultKind.CLOCK_SKEW`
            (negative steps the clock backwards).
    """

    kind: FaultKind
    shard: Optional[int] = None
    times: Optional[int] = 1
    after: int = 0
    probability: float = 1.0
    hang_seconds: float = 0.5
    skew_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    @property
    def site(self) -> str:
        return SITES[self.kind]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "shard": self.shard,
            "times": self.times,
            "after": self.after,
            "probability": self.probability,
            "hang_seconds": self.hang_seconds,
            "skew_seconds": self.skew_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Build a spec from a JSON-shaped dict.

        Raises:
            ValueError: On an unknown kind or unknown keys (a typo in a
                fault plan must fail loudly, not silently not-inject).
        """
        data = dict(payload)
        try:
            kind = FaultKind(data.pop("kind"))
        except (KeyError, ValueError) as error:
            raise ValueError(f"unknown or missing fault kind in {payload!r}") from error
        known = {"shard", "times", "after", "probability", "hang_seconds", "skew_seconds"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault spec keys: {sorted(unknown)}")
        return cls(kind=kind, **data)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the ordered fault specs it drives.

    Example::

        plan = FaultPlan(seed=7, specs=(
            FaultSpec(FaultKind.WORKER_CRASH, times=2),
            FaultSpec(FaultKind.ADVANCE_HANG, hang_seconds=0.6, after=3),
            FaultSpec(FaultKind.CHECKPOINT_CORRUPT),
        ))
        injector = FaultInjector(plan)
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def with_specs(self, specs: Sequence[FaultSpec]) -> "FaultPlan":
        return replace(self, specs=tuple(specs))

    def to_dict(self) -> dict:
        return {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        specs = tuple(FaultSpec.from_dict(entry) for entry in payload.get("specs", []))
        return cls(seed=int(payload.get("seed", 0)), specs=specs)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``).

        Raises:
            ValueError: On unreadable JSON or an invalid spec.
        """
        try:
            with open(path, "r", encoding="utf-8") as source:
                payload = json.load(source)
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"cannot read fault plan {path}: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def chaos(
        cls,
        seed: int,
        n_shards: int = 4,
        include_clock_skew: bool = True,
        include_data_faults: bool = False,
    ) -> "FaultPlan":
        """A randomized-but-reproducible chaos schedule for drills.

        The same seed always yields the same plan, so a CI seed matrix
        reruns the exact drill that failed.  Every generated spec has a
        finite budget — chaos plans must *exhaust*, or the run could
        never converge back to the fault-free outcome.

        Data faults (``include_data_faults``) are drawn *after* every
        process-plane spec, so enabling them never changes the plan an
        existing seed produces for the process plane.
        """
        rng = random.Random(f"repro.faults.chaos:{seed}")
        specs: List[FaultSpec] = [
            FaultSpec(
                FaultKind.WORKER_CRASH,
                shard=rng.choice([None] + list(range(n_shards))),
                times=rng.randint(1, 2),
                after=rng.randint(0, 4),
            )
            for _ in range(rng.randint(1, 2))
        ]
        if rng.random() < 0.8:
            specs.append(
                FaultSpec(
                    FaultKind.ADVANCE_HANG,
                    hang_seconds=round(rng.uniform(0.4, 0.8), 3),
                    after=rng.randint(0, 6),
                )
            )
        specs.append(
            FaultSpec(
                rng.choice([FaultKind.CHECKPOINT_CORRUPT, FaultKind.CHECKPOINT_TRUNCATE]),
                after=rng.randint(0, 2),
            )
        )
        if rng.random() < 0.6:
            specs.append(
                FaultSpec(
                    FaultKind.FLUSHER_DEATH,
                    shard=rng.choice([None] + list(range(n_shards))),
                    times=rng.randint(1, 3),
                    after=rng.randint(0, 20),
                )
            )
        if include_clock_skew and rng.random() < 0.7:
            specs.append(
                FaultSpec(
                    FaultKind.CLOCK_SKEW,
                    skew_seconds=rng.choice([-1.0, 1.0]) * rng.uniform(100.0, 7200.0),
                    after=rng.randint(0, 3),
                )
            )
        if include_data_faults:
            # Data faults fire per ingested *sample*, not per advance, so
            # their budgets are an order larger than the process-plane
            # specs' — still finite, so the drill exhausts.
            specs.append(
                FaultSpec(
                    FaultKind.DATA_CORRUPT,
                    times=rng.randint(3, 12),
                    after=rng.randint(0, 50),
                )
            )
            specs.append(
                FaultSpec(
                    FaultKind.DATA_REORDER,
                    times=rng.randint(10, 40),
                    after=rng.randint(0, 50),
                    probability=round(rng.uniform(0.3, 0.9), 3),
                )
            )
            specs.append(
                FaultSpec(
                    FaultKind.DATA_GAP,
                    times=rng.randint(5, 25),
                    after=rng.randint(0, 50),
                    probability=round(rng.uniform(0.3, 0.9), 3),
                )
            )
        return cls(seed=seed, specs=tuple(specs))
