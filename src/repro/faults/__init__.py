"""Deterministic fault injection for the streaming service.

FBDetect's value is *continuous* in-production monitoring: the paper's
deployment keeps detecting through host failures, rolling updates, and
canary churn (§7).  A reproduction that only exercises the happy path
cannot claim that property, so this package makes the failure paths
first-class: a seedable :class:`FaultPlan` describes *which* faults fire
*when* (worker-process crashes, shard-advance hangs, checkpoint blob
corruption, flush-thread death, clock skew), and a :class:`FaultInjector`
is threaded through the service's hook points
(:class:`~repro.service.parallel.ParallelShardExecutor`,
:class:`~repro.service.ingest.ShardIngestWorker`,
:class:`~repro.service.checkpoint.CheckpointManager`, the background
flushers, and the service's wall clock) to execute it.

Determinism is the design constraint: every injection decision is drawn
from a per-(spec) seeded RNG stream, so the same plan against the same
stream injects the same faults — which is what lets ``tests/chaos``
assert that a fault-ridden run produces *byte-identical* incident
reports to a fault-free one.

The injector never hides what it did: every fired fault increments the
``faults.injected`` counters on the wired metrics registry and appends
an event to the wired :class:`~repro.obs.spans.EventLog`, both of which
surface on the service's ``/faults`` endpoint.
"""

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.injector import FaultInjector, InjectedFault

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]
