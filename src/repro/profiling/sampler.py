"""A real in-process sampling profiler for Python threads.

This is the laptop-scale stand-in for PyPerf's eBPF probe: a background
thread periodically snapshots the call stacks of running Python threads
via ``sys._current_frames()`` and records them as :class:`StackTrace`
samples.  It exercises the identical sample -> gCPU path the paper's
profilers feed, and it lets the §6.6 overhead benchmark measure *actual*
sampling overhead on a CPU-bound workload.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.profiling.stacktrace import Frame, StackTrace, current_frame_metadata

__all__ = ["ThreadStackSampler", "SamplerStats"]


@dataclass(frozen=True)
class SamplerStats:
    """Bookkeeping for a sampling session.

    Attributes:
        samples: Number of snapshots taken.
        duration: Wall-clock seconds the sampler ran.
        effective_rate: Achieved samples per second.
    """

    samples: int
    duration: float

    @property
    def effective_rate(self) -> float:
        return self.samples / self.duration if self.duration > 0 else 0.0


class ThreadStackSampler:
    """Samples the stacks of target Python threads at a fixed rate.

    Args:
        interval: Seconds between samples (1.0 matches the paper's
            highest production rate, used for tiny services).
        target_thread_ids: Thread idents to sample; defaults to every
            thread except the sampler itself.
        max_depth: Truncate stacks deeper than this many frames.

    Example::

        sampler = ThreadStackSampler(interval=0.01)
        sampler.start()
        run_workload()
        stats = sampler.stop()
        table = compute_gcpu(sampler.samples)
    """

    def __init__(
        self,
        interval: float = 1.0,
        target_thread_ids: Optional[List[int]] = None,
        max_depth: int = 128,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.max_depth = max_depth
        self._targets = set(target_thread_ids) if target_thread_ids else None
        self.samples: List[StackTrace] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._sample_count = 0

    def start(self) -> None:
        """Begin sampling in a daemon thread.

        Raises:
            RuntimeError: If the sampler is already running.
        """
        if self._thread is not None:
            raise RuntimeError("sampler already running")
        self._stop.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._run, daemon=True, name="pyperf-sampler")
        self._thread.start()

    def stop(self) -> SamplerStats:
        """Stop sampling and return session statistics.

        Raises:
            RuntimeError: If the sampler was never started.
        """
        if self._thread is None or self._started_at is None:
            raise RuntimeError("sampler not running")
        self._stop.set()
        self._thread.join()
        duration = time.monotonic() - self._started_at
        self._thread = None
        return SamplerStats(samples=self._sample_count, duration=duration)

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._snapshot(own_ident)

    def _snapshot(self, own_ident: int) -> None:
        frames_by_thread: Dict[int, object] = sys._current_frames()
        metadata = current_frame_metadata()
        for ident, top in frames_by_thread.items():
            if ident == own_ident:
                continue
            if self._targets is not None and ident not in self._targets:
                continue
            stack: List[Frame] = []
            frame = top
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                name = f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}"
                stack.append(Frame(name, kind="python", metadata=metadata))
                frame = frame.f_back
                depth += 1
            stack.reverse()  # root-first, matching StackTrace convention
            self.samples.append(StackTrace(frames=tuple(stack)))
            self._sample_count += 1
