"""Stack-trace aggregation: tries, folded stacks, and differentials.

Investigating a reported regression means looking at where CPU went.
This module aggregates stack-trace samples into a weighted prefix trie
(the data structure behind flame graphs), renders it in Brendan Gregg's
folded-stacks text format, and diffs two tries — the "before vs after"
view a developer opens when FBDetect files a ticket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.profiling.stacktrace import StackTrace

__all__ = ["StackTrieNode", "StackTrie", "diff_tries", "FrameDiff"]


@dataclass
class StackTrieNode:
    """One node of the aggregation trie.

    Attributes:
        name: Subroutine name of this frame.
        self_weight: Sample weight ending exactly at this frame.
        total_weight: Sample weight passing through this frame
            (self + all descendants).
        children: Child frames by name.
    """

    name: str
    self_weight: float = 0.0
    total_weight: float = 0.0
    children: Dict[str, "StackTrieNode"] = field(default_factory=dict)

    def child(self, name: str) -> "StackTrieNode":
        """Get or create the child named ``name``."""
        node = self.children.get(name)
        if node is None:
            node = StackTrieNode(name=name)
            self.children[name] = node
        return node


class StackTrie:
    """A weighted prefix trie over stack traces.

    Example::

        trie = StackTrie()
        trie.add_all(samples)
        print(trie.folded())          # flamegraph-ready text
        hot = trie.hottest_paths(5)   # top root-to-leaf paths
    """

    def __init__(self) -> None:
        self.root = StackTrieNode(name="<root>")

    @property
    def total_weight(self) -> float:
        return self.root.total_weight

    def add(self, trace: StackTrace) -> None:
        """Fold one trace into the trie."""
        node = self.root
        node.total_weight += trace.weight
        for frame in trace.frames:
            node = node.child(frame.subroutine)
            node.total_weight += trace.weight
        node.self_weight += trace.weight

    def add_all(self, traces: Iterable[StackTrace]) -> "StackTrie":
        for trace in traces:
            self.add(trace)
        return self

    def lookup(self, path: Tuple[str, ...]) -> Optional[StackTrieNode]:
        """The node at ``path`` (root-relative), or ``None``."""
        node = self.root
        for name in path:
            node = node.children.get(name)
            if node is None:
                return None
        return node

    def gcpu(self, path: Tuple[str, ...]) -> float:
        """Relative weight of a path's subtree (its gCPU contribution)."""
        node = self.lookup(path)
        if node is None or self.total_weight <= 0:
            return 0.0
        return node.total_weight / self.total_weight

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def folded(self) -> str:
        """Brendan Gregg folded-stacks format: ``a;b;c weight`` per line.

        Weights are the *self* weights of each path, so the output feeds
        straight into any flame-graph renderer.
        """
        lines: List[str] = []

        def walk(node: StackTrieNode, prefix: List[str]) -> None:
            path = prefix + [node.name]
            if node.self_weight > 0:
                lines.append(f"{';'.join(path)} {node.self_weight:g}")
            for child in sorted(node.children.values(), key=lambda c: c.name):
                walk(child, path)

        for child in sorted(self.root.children.values(), key=lambda c: c.name):
            walk(child, [])
        return "\n".join(lines)

    def hottest_paths(self, k: int = 10) -> List[Tuple[Tuple[str, ...], float]]:
        """The ``k`` heaviest root-to-frame paths by self weight."""
        heap: List[Tuple[Tuple[str, ...], float]] = []

        def walk(node: StackTrieNode, prefix: Tuple[str, ...]) -> None:
            path = prefix + (node.name,)
            if node.self_weight > 0:
                heap.append((path, node.self_weight))
            for child in node.children.values():
                walk(child, path)

        for child in self.root.children.values():
            walk(child, ())
        heap.sort(key=lambda item: (-item[1], item[0]))
        return heap[:k]


@dataclass(frozen=True)
class FrameDiff:
    """One path's weight change between two tries.

    Attributes:
        path: Root-relative frame path.
        before: Relative subtree weight in the baseline trie.
        after: Relative subtree weight in the comparison trie.
    """

    path: Tuple[str, ...]
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before


def diff_tries(
    before: StackTrie,
    after: StackTrie,
    min_delta: float = 1e-6,
) -> List[FrameDiff]:
    """Differential view: paths whose relative weight changed.

    Both tries are normalized to relative weights so fleets of different
    sample counts compare fairly.  Results are sorted by descending
    absolute delta — the first entries are where the regression lives.

    Args:
        before: Baseline samples (pre-change).
        after: Comparison samples (post-change).
        min_delta: Suppress paths moving less than this.
    """
    paths: Dict[Tuple[str, ...], FrameDiff] = {}

    def collect(trie: StackTrie, is_before: bool) -> None:
        total = trie.total_weight or 1.0

        def walk(node: StackTrieNode, prefix: Tuple[str, ...]) -> None:
            path = prefix + (node.name,)
            relative = node.total_weight / total
            existing = paths.get(path)
            if existing is None:
                paths[path] = FrameDiff(
                    path=path,
                    before=relative if is_before else 0.0,
                    after=0.0 if is_before else relative,
                )
            else:
                paths[path] = FrameDiff(
                    path=path,
                    before=existing.before + (relative if is_before else 0.0),
                    after=existing.after + (0.0 if is_before else relative),
                )
            for child in node.children.values():
                walk(child, path)

        for child in trie.root.children.values():
            walk(child, ())

    collect(before, is_before=True)
    collect(after, is_before=False)
    diffs = [d for d in paths.values() if abs(d.delta) >= min_delta]
    diffs.sort(key=lambda d: (-abs(d.delta), d.path))
    return diffs
