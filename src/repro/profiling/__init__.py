"""Fleet-wide stack-trace profiling substrate (§4).

FBDetect derives per-subroutine relative CPU usage (gCPU) from periodic
stack-trace samples: if subroutine ``foo`` appears in 8 of 100 samples,
its gCPU is 8%.  This subpackage provides:

- :mod:`repro.profiling.stacktrace` — frames, stack traces and
  ``SetFrameMetadata``-style frame annotations.
- :mod:`repro.profiling.pyperf` — the PyPerf merged-stack reconstruction
  of Figure 5, operating on simulated CPython system stacks and virtual
  call stacks.
- :mod:`repro.profiling.sampler` — a *real* in-process sampling profiler
  for Python threads, used to measure profiling overhead (§6.6).
- :mod:`repro.profiling.gcpu` — gCPU computation from sample sets.
- :mod:`repro.profiling.collector` — fleet-wide sample collection into
  the time-series database.
"""

from repro.profiling.collector import FleetProfileCollector
from repro.profiling.gcpu import GcpuTable, compute_gcpu, stack_trace_overlap
from repro.profiling.pyperf import (
    EVAL_FRAME_SYMBOL,
    PyPerfProfiler,
    SimulatedCPythonProcess,
    merge_stacks,
)
from repro.profiling.sampler import SamplerStats, ThreadStackSampler
from repro.profiling.stacktrace import Frame, StackTrace, set_frame_metadata

__all__ = [
    "EVAL_FRAME_SYMBOL",
    "FleetProfileCollector",
    "Frame",
    "GcpuTable",
    "PyPerfProfiler",
    "SamplerStats",
    "SimulatedCPythonProcess",
    "StackTrace",
    "ThreadStackSampler",
    "compute_gcpu",
    "merge_stacks",
    "set_frame_metadata",
    "stack_trace_overlap",
]
