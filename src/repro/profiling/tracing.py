"""End-to-end request tracing for endpoint-level regressions (§3).

FrontFaaS endpoint requests "may involve asynchronous and concurrent
processing across multiple threads", so FBDetect uses end-to-end tracing
(Canopy-style) to aggregate the costs of all subroutines involved in one
request; regressions in this aggregated cost are *endpoint-level
regressions*.

This module provides the tracing substrate: spans with parent/child
links and CPU cost, traces assembled across execution contexts, and an
aggregator that turns per-request traces into endpoint cost time series
the detection pipeline can scan.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["Span", "RequestTrace", "Tracer", "EndpointCostAggregator"]


@dataclass
class Span:
    """One unit of work within a request.

    Attributes:
        span_id: Unique within the trace.
        name: Subroutine or operation name.
        parent_id: Enclosing span, or ``None`` for the root.
        thread_name: Execution context that ran the work (asynchronous
            processing spreads a request across several).
        cpu_cost: CPU seconds consumed by this span's own work
            (excluding children).
        start: Wall-clock start time.
        duration: Wall-clock duration.
    """

    span_id: int
    name: str
    parent_id: Optional[int]
    thread_name: str
    cpu_cost: float = 0.0
    start: float = 0.0
    duration: float = 0.0


@dataclass
class RequestTrace:
    """A completed end-to-end trace for one endpoint request.

    Attributes:
        trace_id: Request id.
        endpoint: The user-facing URL this request served.
        spans: All spans, across every thread involved.
        start: Request start time.
    """

    trace_id: int
    endpoint: str
    spans: List[Span] = field(default_factory=list)
    start: float = 0.0

    @property
    def total_cpu_cost(self) -> float:
        """Aggregated CPU cost across all threads (the endpoint cost)."""
        return sum(span.cpu_cost for span in self.spans)

    @property
    def end_to_end_latency(self) -> float:
        """Wall-clock span of the whole request."""
        if not self.spans:
            return 0.0
        first = min(span.start for span in self.spans)
        last = max(span.start + span.duration for span in self.spans)
        return last - first

    @property
    def thread_count(self) -> int:
        return len({span.thread_name for span in self.spans})

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        """Direct children of ``span_id`` (``None`` for roots)."""
        return [span for span in self.spans if span.parent_id == span_id]

    def subtree_cost(self, span_id: int) -> float:
        """CPU cost of a span including its transitive children."""
        by_parent: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        total = 0.0
        stack = [span for span in self.spans if span.span_id == span_id]
        if not stack:
            raise KeyError(f"unknown span {span_id}")
        while stack:
            span = stack.pop()
            total += span.cpu_cost
            stack.extend(by_parent.get(span.span_id, []))
        return total


class Tracer:
    """Builds request traces across threads.

    The active span is tracked per-thread; spans started on a new thread
    for the same trace attach to the parent recorded when the work was
    handed off (pass ``parent`` explicitly for cross-thread hand-offs).

    Example::

        tracer = Tracer()
        with tracer.request("/feed") as trace:
            with tracer.span("render") as render:
                do_render()
                with tracer.span("rank"):
                    do_rank()
        print(trace.total_cpu_cost)
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._trace_counter = itertools.count(1)
        self._span_counter = itertools.count(1)
        self._local = threading.local()
        self.completed: List[RequestTrace] = []

    # ------------------------------------------------------------------
    # Context helpers
    # ------------------------------------------------------------------

    def _current_trace(self) -> Optional[RequestTrace]:
        return getattr(self._local, "trace", None)

    def _current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "span_stack", None)
        return stack[-1] if stack else None

    def request(self, endpoint: str) -> "_RequestContext":
        """Begin a new request trace on the calling thread."""
        trace = RequestTrace(
            trace_id=next(self._trace_counter),
            endpoint=endpoint,
            start=self._clock(),
        )
        return _RequestContext(self, trace)

    def span(
        self,
        name: str,
        cpu_cost: float = 0.0,
        parent: Optional[Span] = None,
        trace: Optional[RequestTrace] = None,
    ) -> "_SpanContext":
        """Begin a span under the current (or given) parent.

        Args:
            name: Operation name.
            cpu_cost: Pre-measured CPU cost to record; simulated
                workloads pass the modelled cost directly.
            parent: Explicit parent span for cross-thread hand-offs.
            trace: Explicit trace for cross-thread hand-offs.

        Raises:
            RuntimeError: When no trace is active and none was given.
        """
        active_trace = trace or self._current_trace()
        if active_trace is None:
            raise RuntimeError("span() outside of a request trace")
        effective_parent = parent if parent is not None else self._current_span()
        span = Span(
            span_id=next(self._span_counter),
            name=name,
            parent_id=effective_parent.span_id if effective_parent else None,
            thread_name=threading.current_thread().name,
            cpu_cost=cpu_cost,
            start=self._clock(),
        )
        return _SpanContext(self, active_trace, span)


class _RequestContext:
    def __init__(self, tracer: Tracer, trace: RequestTrace) -> None:
        self._tracer = tracer
        self.trace = trace

    def __enter__(self) -> RequestTrace:
        self._tracer._local.trace = self.trace
        self._tracer._local.span_stack = []
        return self.trace

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._local.trace = None
        self._tracer._local.span_stack = []
        self._tracer.completed.append(self.trace)


class _SpanContext:
    def __init__(self, tracer: Tracer, trace: RequestTrace, span: Span) -> None:
        self._tracer = tracer
        self._trace = trace
        self.span = span
        self._had_local_trace = False

    def __enter__(self) -> Span:
        local = self._tracer._local
        # Cross-thread spans adopt the trace for the span's lifetime.
        if getattr(local, "trace", None) is None:
            local.trace = self._trace
            local.span_stack = []
            self._had_local_trace = False
        else:
            self._had_local_trace = True
        local.span_stack.append(self.span)
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        local = self._tracer._local
        self.span.duration = self._tracer._clock() - self.span.start
        local.span_stack.pop()
        self._trace.spans.append(self.span)
        if not self._had_local_trace:
            local.trace = None


class EndpointCostAggregator:
    """Aggregates completed traces into endpoint-level cost series.

    Per collection interval, emits for each endpoint:

    - ``{service}.endpoint{path}.cost`` — mean aggregated CPU cost per
      request (the endpoint-level regression metric);
    - ``{service}.endpoint{path}.latency`` — mean end-to-end latency;
    - ``{service}.endpoint{path}.requests`` — request count.
    """

    def __init__(self, database: TimeSeriesDatabase, service: str) -> None:
        self.database = database
        self.service = service

    def ingest(self, timestamp: float, traces: Sequence[RequestTrace]) -> int:
        """Aggregate one interval's traces; returns points written."""
        by_endpoint: Dict[str, List[RequestTrace]] = {}
        for trace in traces:
            by_endpoint.setdefault(trace.endpoint, []).append(trace)

        written = 0
        for endpoint, group in sorted(by_endpoint.items()):
            suffix = endpoint.replace("/", ".")
            tags = {"service": self.service, "endpoint": endpoint}
            costs = [t.total_cpu_cost for t in group]
            latencies = [t.end_to_end_latency for t in group]
            self.database.write(
                f"{self.service}.endpoint{suffix}.cost",
                timestamp,
                sum(costs) / len(costs),
                {**tags, "metric": "endpoint_cost"},
            )
            self.database.write(
                f"{self.service}.endpoint{suffix}.latency",
                timestamp,
                sum(latencies) / len(latencies),
                {**tags, "metric": "endpoint_latency"},
            )
            self.database.write(
                f"{self.service}.endpoint{suffix}.requests",
                timestamp,
                float(len(group)),
                {**tags, "metric": "endpoint_requests"},
            )
            written += 3
        return written
