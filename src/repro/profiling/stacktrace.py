"""Stack-trace representation with frame metadata.

A :class:`StackTrace` is an ordered tuple of :class:`Frame` objects from
outermost caller to innermost callee.  Frames may carry metadata set via
``SetFrameMetadata()`` (§3), which FBDetect uses to detect regressions
that occur only under certain conditions (e.g. requests on behalf of a
specific category of users) and as a cost-domain grouping key (§5.4).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = ["Frame", "StackTrace", "set_frame_metadata", "current_frame_metadata"]


@dataclass(frozen=True)
class Frame:
    """One stack frame.

    Attributes:
        subroutine: Fully qualified subroutine name, e.g.
            ``"feed::Ranker::score"``.
        kind: Origin of the frame: ``"python"``, ``"native"``,
            ``"interpreter"`` (CPython-internal), or ``"system"``.
        metadata: Optional ``SetFrameMetadata`` annotation.
    """

    subroutine: str
    kind: str = "native"
    metadata: Optional[str] = None

    def with_metadata(self, metadata: str) -> "Frame":
        """A copy of this frame carrying ``metadata``."""
        return Frame(subroutine=self.subroutine, kind=self.kind, metadata=metadata)

    @property
    def class_name(self) -> Optional[str]:
        """The enclosing class, parsed from ``Namespace::Class::method`` names."""
        parts = self.subroutine.rsplit("::", 1)
        return parts[0] if len(parts) == 2 else None


@dataclass(frozen=True)
class StackTrace:
    """An ordered stack, outermost caller first.

    Attributes:
        frames: The frames, root (e.g. ``_start``) to leaf.
        weight: Sample weight — the number of identical samples this
            trace represents (collapsed storage for hot stacks).
    """

    frames: Tuple[Frame, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.frames, tuple):
            object.__setattr__(self, "frames", tuple(self.frames))
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    @classmethod
    def from_names(
        cls, names: Sequence[str], kind: str = "native", weight: float = 1.0
    ) -> "StackTrace":
        """Build a trace from plain subroutine names."""
        return cls(frames=tuple(Frame(name, kind=kind) for name in names), weight=weight)

    @property
    def subroutines(self) -> Tuple[str, ...]:
        """Subroutine names, root to leaf."""
        return tuple(frame.subroutine for frame in self.frames)

    @property
    def leaf(self) -> Optional[Frame]:
        """The innermost frame (on-CPU at sample time), or ``None``."""
        return self.frames[-1] if self.frames else None

    def contains(self, subroutine: str) -> bool:
        """Whether ``subroutine`` appears anywhere in the stack."""
        return any(frame.subroutine == subroutine for frame in self.frames)

    def callers_of(self, subroutine: str) -> Tuple[str, ...]:
        """Direct (immediate upstream) callers of ``subroutine`` in this trace."""
        callers = []
        for i, frame in enumerate(self.frames):
            if frame.subroutine == subroutine and i > 0:
                callers.append(self.frames[i - 1].subroutine)
        return tuple(callers)

    def callees_of(self, subroutine: str) -> Tuple[str, ...]:
        """All subroutines transitively invoked below ``subroutine``."""
        for i, frame in enumerate(self.frames):
            if frame.subroutine == subroutine:
                return tuple(f.subroutine for f in self.frames[i + 1 :])
        return ()

    def metadata_values(self) -> Tuple[str, ...]:
        """All frame-metadata annotations present in the stack."""
        return tuple(f.metadata for f in self.frames if f.metadata is not None)

    def key(self) -> Tuple[Tuple[str, Optional[str]], ...]:
        """Hashable identity used to collapse identical samples."""
        return tuple((f.subroutine, f.metadata) for f in self.frames)


# ---------------------------------------------------------------------------
# SetFrameMetadata: the in-process annotation API (§3).  Real services call
# this inside a request handler; our simulator and the real thread sampler
# both read the thread-local annotation stack when producing samples.
# ---------------------------------------------------------------------------

_frame_metadata = threading.local()


class set_frame_metadata:
    """Context manager annotating the current (simulated) stack frame.

    Mirrors FrontFaaS's ``SetFrameMetadata()``: while the context is
    active, samples taken of this thread carry the annotation, enabling
    metadata-annotated regression detection.

    Example::

        with set_frame_metadata("user_category:enterprise"):
            handle_request()
    """

    def __init__(self, metadata: str) -> None:
        self.metadata = metadata

    def __enter__(self) -> "set_frame_metadata":
        stack = getattr(_frame_metadata, "stack", None)
        if stack is None:
            stack = []
            _frame_metadata.stack = stack
        stack.append(self.metadata)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _frame_metadata.stack.pop()


def current_frame_metadata() -> Optional[str]:
    """The innermost active annotation of the calling thread, if any."""
    stack = getattr(_frame_metadata, "stack", None)
    return stack[-1] if stack else None
