"""gCPU derivation from stack-trace samples (§2, §4).

The normalized CPU usage of a subroutine is the fraction of stack-trace
samples it appears in: with 100 samples and ``foo`` present in 8, gCPU of
``foo`` is 8%.  A subroutine's gCPU includes its transitively invoked
children, because a sample containing a child also contains the parent
frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.profiling.stacktrace import StackTrace

__all__ = ["GcpuTable", "compute_gcpu", "stack_trace_overlap"]


@dataclass
class GcpuTable:
    """Per-subroutine gCPU derived from one batch of samples.

    Attributes:
        total_weight: Total sample weight in the batch.
        weights: Sample weight containing each subroutine.
    """

    total_weight: float
    weights: Dict[str, float] = field(default_factory=dict)

    def gcpu(self, subroutine: str) -> float:
        """gCPU of ``subroutine`` in [0, 1]; 0.0 when never sampled."""
        if self.total_weight <= 0:
            return 0.0
        return self.weights.get(subroutine, 0.0) / self.total_weight

    def subroutines(self) -> List[str]:
        """All subroutines observed, sorted by descending gCPU."""
        return sorted(self.weights, key=lambda s: (-self.weights[s], s))

    def non_trivial(self, threshold: float = 1e-5) -> List[str]:
        """Subroutines with gCPU >= ``threshold``.

        The paper calls subroutines with gCPU >= 0.001% "non-trivial";
        the default threshold matches that definition.
        """
        return [s for s in self.subroutines() if self.gcpu(s) >= threshold]

    def as_dict(self) -> Dict[str, float]:
        """``{subroutine: gcpu}`` for every observed subroutine."""
        return {s: self.gcpu(s) for s in self.weights}


def compute_gcpu(samples: Iterable[StackTrace]) -> GcpuTable:
    """Aggregate stack-trace samples into a :class:`GcpuTable`.

    A subroutine appearing multiple times in one sample (recursion) still
    counts that sample once — gCPU is "fraction of samples containing the
    subroutine", not a frame count.
    """
    weights: Dict[str, float] = {}
    total = 0.0
    for trace in samples:
        total += trace.weight
        for subroutine in set(trace.subroutines):
            weights[subroutine] = weights.get(subroutine, 0.0) + trace.weight
    return GcpuTable(total_weight=total, weights=weights)


def stack_trace_overlap(
    samples: Sequence[StackTrace],
    subroutine_a: str,
    subroutine_b: str,
) -> float:
    """Fraction of shared samples between two subroutines' gCPU inputs.

    PairwiseDedup's stack-trace-overlap feature (§5.5.2): since multiple
    subroutines appear in one sample, the same sample contributes to both
    of their gCPUs.  The overlap is ``|A ∩ B| / |A ∪ B|`` measured in
    sample weight, where A and B are the sample sets containing each
    subroutine.  Returns 0.0 when neither subroutine was sampled.
    """
    weight_a = weight_b = weight_both = 0.0
    for trace in samples:
        names: Set[str] = set(trace.subroutines)
        in_a = subroutine_a in names
        in_b = subroutine_b in names
        if in_a:
            weight_a += trace.weight
        if in_b:
            weight_b += trace.weight
        if in_a and in_b:
            weight_both += trace.weight
    union = weight_a + weight_b - weight_both
    return weight_both / union if union > 0 else 0.0
