"""PyPerf: merged Python + native stack reconstruction (Figure 5).

Sampling an interpreted program's OS thread yields the *interpreter's*
stack: CPython-internal frames, a sequence of ``_PyEval_EvalFrameDefault``
calls, and frames of native C/C++ libraries the Python code invoked.
PyPerf's key insight is that each ``_PyEval_EvalFrameDefault`` call in the
system stack maps precisely to one frame of CPython's *virtual call stack*
(VCS) — the linked list of Python frames whose head lives at a fixed
location in the interpreter.

This module reproduces that reconstruction faithfully on a simulated
CPython process: :class:`SimulatedCPythonProcess` models a process with a
system stack and a VCS, and :func:`merge_stacks` performs the walk that
the real PyPerf's eBPF probe performs in the kernel, producing an
end-to-end stack across Python code and the native libraries it calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.profiling.stacktrace import Frame, StackTrace

__all__ = [
    "EVAL_FRAME_SYMBOL",
    "VcsFrame",
    "SimulatedCPythonProcess",
    "merge_stacks",
    "PyPerfProfiler",
]

#: The CPython C function that executes one Python frame.  Every
#: occurrence in the system stack corresponds to exactly one VCS entry.
EVAL_FRAME_SYMBOL = "_PyEval_EvalFrameDefault"

#: Interpreter bootstrap frames per CPython version.  The paper: PyPerf
#: "handles various Python versions" — the VCS head location and the
#: interpreter-internal call chain differ across releases, so the probe
#: carries per-version layout profiles.  These are the (simulated)
#: bootstrap chains each version pushes before the first eval frame.
INTERPRETER_PROFILES = {
    "3.8": ("Py_RunMain", "pymain_run_python", "PyRun_SimpleFileExFlags"),
    "3.10": ("Py_RunMain", "pymain_run_python", "_PyRun_SimpleFileObject"),
    "3.11": ("Py_RunMain", "pymain_run_python", "_PyRun_SimpleFileObject", "run_mod"),
    "3.12": ("Py_RunMain", "pymain_run_python", "_PyRun_SimpleFileObject", "run_eval_code_obj"),
}


@dataclass(frozen=True)
class VcsFrame:
    """One frame of CPython's virtual call stack.

    Attributes:
        function: Python function name (source-code address analogue).
        metadata: Optional ``SetFrameMetadata`` annotation.
    """

    function: str
    metadata: Optional[str] = None


def merge_stacks(
    system_stack: Sequence[Frame],
    vcs: Sequence[VcsFrame],
) -> StackTrace:
    """Reconstruct the end-to-end stack from a system stack and a VCS.

    Walks the system stack root-to-leaf; each ``_PyEval_EvalFrameDefault``
    frame is replaced by the next unconsumed VCS frame (the VCS is ordered
    outermost Python call first, matching the eval-frame nesting order).
    CPython-internal frames between the root and the first eval frame are
    dropped (they are interpreter bookkeeping, not program cost); system
    and native frames are kept verbatim.

    Args:
        system_stack: Frames as an OS profiler would see them, root first.
        vcs: The Python program's virtual call stack, outermost first.

    Returns:
        The merged :class:`StackTrace` (Figure 5, right).

    Raises:
        ValueError: If the count of eval frames does not equal the VCS
            length — a corrupt sample in the real system, rejected rather
            than guessed at.
    """
    eval_count = sum(1 for f in system_stack if f.subroutine == EVAL_FRAME_SYMBOL)
    if eval_count != len(vcs):
        raise ValueError(
            f"corrupt sample: {eval_count} {EVAL_FRAME_SYMBOL} frames "
            f"but VCS has {len(vcs)} entries"
        )

    merged: List[Frame] = []
    vcs_iter = iter(vcs)
    for frame in system_stack:
        if frame.subroutine == EVAL_FRAME_SYMBOL:
            py = next(vcs_iter)
            merged.append(Frame(py.function, kind="python", metadata=py.metadata))
        elif frame.kind == "interpreter":
            # CPython-internal plumbing (ceval loop helpers, call shims):
            # invisible in the merged trace, exactly as PyPerf reports.
            continue
        else:
            merged.append(frame)
    return StackTrace(frames=tuple(merged))


@dataclass
class SimulatedCPythonProcess:
    """A CPython process model exposing what PyPerf's eBPF probe reads.

    The simulated fleet uses this to emit realistic samples for Python
    services: callers push Python calls (which grow both the system stack
    and the VCS) and native calls (system stack only), then a profiler
    snapshot performs the merge.

    Attributes:
        pid: Process id, for bookkeeping.
        python_version: Interpreter release; selects the bootstrap-frame
            layout from :data:`INTERPRETER_PROFILES` (the real PyPerf
            carries per-version VCS offsets the same way).
    """

    pid: int = 0
    python_version: str = "3.10"
    _system_stack: List[Frame] = field(default_factory=list)
    _vcs: List[VcsFrame] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.python_version not in INTERPRETER_PROFILES:
            raise ValueError(
                f"unsupported python_version {self.python_version!r}; "
                f"known: {sorted(INTERPRETER_PROFILES)}"
            )
        bootstrap = INTERPRETER_PROFILES[self.python_version]
        self._system_stack = [Frame("_start", kind="system")] + [
            Frame(symbol, kind="interpreter") for symbol in bootstrap
        ]
        self._bootstrap_depth = len(self._system_stack)
        self._vcs = []

    def call_python(self, function: str, metadata: Optional[str] = None) -> None:
        """Enter a Python function: one eval frame + one VCS entry."""
        self._system_stack.append(Frame(EVAL_FRAME_SYMBOL, kind="interpreter"))
        self._vcs.append(VcsFrame(function=function, metadata=metadata))

    def call_native(self, symbol: str) -> None:
        """Enter a native C/C++ library function (system stack only)."""
        self._system_stack.append(Frame(symbol, kind="native"))

    def ret(self) -> None:
        """Return from the innermost call.

        Raises:
            IndexError: If nothing above the interpreter bootstrap remains.
        """
        if len(self._system_stack) <= self._bootstrap_depth:
            raise IndexError("return past the interpreter bootstrap frames")
        frame = self._system_stack.pop()
        if frame.subroutine == EVAL_FRAME_SYMBOL:
            self._vcs.pop()

    @property
    def system_stack(self) -> Tuple[Frame, ...]:
        """What a naive OS profiler would sample (interpreter frames visible)."""
        return tuple(self._system_stack)

    @property
    def vcs(self) -> Tuple[VcsFrame, ...]:
        """The Python virtual call stack, outermost first."""
        return tuple(self._vcs)


class PyPerfProfiler:
    """Takes merged-stack samples of simulated CPython processes.

    Args:
        sample_interval: Seconds between samples of one process (the
            paper: 1/1800 Hz for PythonFaaS, up to 1 Hz for tiny services
            like Invoicer).
    """

    def __init__(self, sample_interval: float = 1.0) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sample_interval = sample_interval
        self.samples_taken = 0

    def sample(self, process: SimulatedCPythonProcess) -> StackTrace:
        """Snapshot one process into a merged end-to-end stack trace."""
        self.samples_taken += 1
        return merge_stacks(process.system_stack, process.vcs)

    def naive_sample(self, process: SimulatedCPythonProcess) -> StackTrace:
        """What a non-PyPerf OS profiler reports: the raw interpreter stack.

        Useful in tests and examples to demonstrate why plain ``perf``
        sampling of CPython is useless for subroutine attribution — every
        Python frame collapses to ``_PyEval_EvalFrameDefault``.
        """
        return StackTrace(frames=process.system_stack)
