"""Fleet-wide profile collection into the time-series database.

Bridges the profiling layer and the TSDB: batches of stack-trace samples
(one batch per collection interval, aggregated across a service's
servers) become per-subroutine gCPU time-series points that the detection
pipeline scans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.profiling.gcpu import compute_gcpu
from repro.profiling.stacktrace import StackTrace
from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["FleetProfileCollector"]


class FleetProfileCollector:
    """Turns per-interval sample batches into gCPU time series.

    Series are named ``{service}.{subroutine}.gcpu`` and tagged with
    ``service``, ``subroutine`` and ``metric="gcpu"`` so the pipeline can
    route them.  Samples carrying frame metadata additionally produce
    ``{service}.{subroutine}@{metadata}.gcpu`` series, enabling
    metadata-annotated regression detection (§3).

    Args:
        database: Destination TSDB.
        service: Service name for series naming and tags.
        min_gcpu: Subroutines below this gCPU are not written — the
            paper's "non-trivial" cutoff (default 0.001%).
        track_metadata: Whether to emit metadata-annotated series.
    """

    def __init__(
        self,
        database: TimeSeriesDatabase,
        service: str,
        min_gcpu: float = 1e-5,
        track_metadata: bool = True,
    ) -> None:
        self.database = database
        self.service = service
        self.min_gcpu = min_gcpu
        self.track_metadata = track_metadata
        self.sample_history: List[StackTrace] = []
        self._history_limit = 200_000

    def ingest(self, timestamp: float, samples: Sequence[StackTrace]) -> int:
        """Ingest one interval's samples; returns series points written.

        Also retains the raw samples (bounded) so downstream passes —
        cost-shift analysis and PairwiseDedup's stack-trace-overlap
        feature — can consult them.
        """
        if not samples:
            return 0
        self.sample_history.extend(samples)
        if len(self.sample_history) > self._history_limit:
            del self.sample_history[: len(self.sample_history) - self._history_limit]

        table = compute_gcpu(samples)
        written = 0
        for subroutine in table.non_trivial(self.min_gcpu):
            self.database.write(
                f"{self.service}.{subroutine}.gcpu",
                timestamp,
                table.gcpu(subroutine),
                tags={
                    "service": self.service,
                    "subroutine": subroutine,
                    "metric": "gcpu",
                },
            )
            written += 1

        if self.track_metadata:
            written += self._ingest_metadata(timestamp, samples)
        return written

    def _ingest_metadata(self, timestamp: float, samples: Sequence[StackTrace]) -> int:
        """Emit gCPU series keyed by (subroutine, metadata) pairs."""
        weights: Dict[tuple, float] = {}
        total = 0.0
        for trace in samples:
            total += trace.weight
            seen = set()
            for frame in trace.frames:
                if frame.metadata is None:
                    continue
                key = (frame.subroutine, frame.metadata)
                if key not in seen:
                    weights[key] = weights.get(key, 0.0) + trace.weight
                    seen.add(key)
        written = 0
        for (subroutine, metadata), weight in weights.items():
            gcpu = weight / total if total > 0 else 0.0
            if gcpu < self.min_gcpu:
                continue
            self.database.write(
                f"{self.service}.{subroutine}@{metadata}.gcpu",
                timestamp,
                gcpu,
                tags={
                    "service": self.service,
                    "subroutine": subroutine,
                    "metadata": metadata,
                    "metric": "gcpu",
                },
            )
            written += 1
        return written
