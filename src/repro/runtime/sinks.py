"""Incident-report sinks.

A sink receives the :class:`~repro.reporting.report.IncidentReport` for
every regression the scheduler's monitors report — the integration point
for ticket filing, paging, or test collection.
"""

from __future__ import annotations

import abc
import json
import logging
import threading
from typing import IO, List, Optional, Union

from repro.reporting.report import IncidentReport, format_report

__all__ = ["IncidentSink", "CollectingSink", "LoggingSink", "JsonLinesSink"]


class IncidentSink(abc.ABC):
    """Receives incident reports as monitors produce them."""

    @abc.abstractmethod
    def deliver(self, report: IncidentReport) -> None:
        """Handle one report (file a ticket, page, record ...)."""


class CollectingSink(IncidentSink):
    """Accumulates reports in memory (tests, batch analysis)."""

    def __init__(self) -> None:
        self.reports: List[IncidentReport] = []

    def deliver(self, report: IncidentReport) -> None:
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)


class LoggingSink(IncidentSink):
    """Writes formatted reports to a logger (default: ``repro.runtime``)."""

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self._logger = logger or logging.getLogger("repro.runtime")

    def deliver(self, report: IncidentReport) -> None:
        self._logger.warning("%s", format_report(report))


class JsonLinesSink(IncidentSink):
    """Appends one JSON object per report to a file (or file-like).

    The durable integration format: downstream ticketing/alerting
    systems tail the file.  Writes are line-atomic under a lock so the
    scheduler's parallel scans can share one sink.
    """

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        self._lock = threading.Lock()
        if isinstance(destination, str):
            self._path: Optional[str] = destination
            self._stream: Optional[IO[str]] = None
        else:
            self._path = None
            self._stream = destination

    def deliver(self, report: IncidentReport) -> None:
        line = json.dumps(report.to_dict(), sort_keys=True)
        with self._lock:
            if self._stream is not None:
                self._stream.write(line + "\n")
                self._stream.flush()
            else:
                assert self._path is not None
                with open(self._path, "a", encoding="utf-8") as sink:
                    sink.write(line + "\n")
