"""Incident-report sinks.

A sink receives the :class:`~repro.reporting.report.IncidentReport` for
every regression the scheduler's monitors report — the integration point
for ticket filing, paging, or test collection.

Delivery contract: a sink's :meth:`~IncidentSink.deliver` may raise (a
full disk, a dead endpoint); the *caller* is responsible for isolating
that failure so one broken sink never blocks the others or the scan
loop that produced the report.  The streaming service wraps every sink
call and counts failures under ``service.sinks.errors`` — see
:meth:`repro.service.service.StreamingDetectionService`.  Sinks that
hold resources (file handles, delivery threads) release them in
:meth:`~IncidentSink.close`, which the service calls on shutdown.

For a network sink with buffered, retried delivery see
:class:`repro.connectors.WebhookSink`.
"""

from __future__ import annotations

import abc
import json
import logging
import threading
from typing import IO, List, Optional, Union

from repro.reporting.report import IncidentReport, format_report

__all__ = ["IncidentSink", "CollectingSink", "LoggingSink", "JsonLinesSink"]


class IncidentSink(abc.ABC):
    """Receives incident reports as monitors produce them."""

    @abc.abstractmethod
    def deliver(self, report: IncidentReport) -> None:
        """Handle one report (file a ticket, page, record ...)."""

    def close(self) -> None:
        """Release held resources (handles, threads).  Default: no-op."""


class CollectingSink(IncidentSink):
    """Accumulates reports in memory (tests, batch analysis)."""

    def __init__(self) -> None:
        self.reports: List[IncidentReport] = []

    def deliver(self, report: IncidentReport) -> None:
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)


class LoggingSink(IncidentSink):
    """Writes formatted reports to a logger (default: ``repro.runtime``)."""

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self._logger = logger or logging.getLogger("repro.runtime")

    def deliver(self, report: IncidentReport) -> None:
        self._logger.warning("%s", format_report(report))


class JsonLinesSink(IncidentSink):
    """Appends one JSON object per report to a file (or file-like).

    The durable integration format: downstream ticketing/alerting
    systems tail the file.  Writes are line-atomic under a lock so the
    scheduler's parallel scans can share one sink.

    In path mode the file is opened once, on first delivery, and the
    handle is held across reports (reopening per report costs a
    path-resolution and fd churn on every alert and hides permission
    errors until delivery time).  A failed write closes the handle so
    the next delivery retries from a fresh open — after an ENOSPC or a
    rotated file, recovery needs a new fd, not the poisoned one.  The
    error still propagates: routing it is the caller's job (the service
    counts it under ``service.sinks.errors`` and carries on).
    """

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        self._lock = threading.Lock()
        if isinstance(destination, str):
            self._path: Optional[str] = destination
            self._stream: Optional[IO[str]] = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = destination
            self._owns_stream = False

    def deliver(self, report: IncidentReport) -> None:
        line = json.dumps(report.to_dict(), sort_keys=True)
        with self._lock:
            if self._stream is None:
                assert self._path is not None
                self._stream = open(self._path, "a", encoding="utf-8")
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except Exception:
                if self._owns_stream:
                    self._drop_stream()
                raise

    def _drop_stream(self) -> None:
        """Close and forget the handle (lock held); best-effort close."""
        stream, self._stream = self._stream, None
        if stream is not None:
            try:
                stream.close()
            except Exception:
                pass

    def close(self) -> None:
        """Close the held file handle (path mode; streams stay open —
        the caller owns them)."""
        with self._lock:
            if self._owns_stream:
                self._drop_stream()
