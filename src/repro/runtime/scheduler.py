"""The detection scheduler.

Owns many monitors — each a (name, detection config, series filter)
triple with its own persistent :class:`~repro.core.detector.FBDetect`
state — and advances simulated time, running every monitor whose re-run
interval has elapsed.  Scans within one tick execute in parallel worker
threads, mirroring the paper's serverless deployment that scans
different time series in parallel.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import DetectionConfig
from repro.core.detector import FBDetect
from repro.core.pipeline import PipelineResult
from repro.detectors.shadow import merge_snapshot_rows
from repro.fleet.changes import ChangeLog
from repro.obs.logging import correlation_id, get_logger, log_context
from repro.profiling.stacktrace import StackTrace
from repro.reporting.report import build_report
from repro.runtime.sinks import IncidentSink
from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["MonitorRegistration", "ScanOutcome", "DetectionScheduler"]

_log = get_logger("repro.runtime.scheduler")


@dataclass
class MonitorRegistration:
    """One registered monitor.

    Attributes:
        name: Monitor label (shows up in outcomes).
        detector: The FBDetect instance (holds dedup state across scans).
        next_run: Simulated time of the next scheduled scan.
    """

    name: str
    detector: FBDetect
    next_run: float


@dataclass(frozen=True)
class ScanOutcome:
    """Result of one monitor scan."""

    monitor: str
    now: float
    result: PipelineResult

    @property
    def reported_count(self) -> int:
        return len(self.result.reported)


class DetectionScheduler:
    """Runs registered monitors against a shared TSDB over time.

    Args:
        database: The TSDB all monitors scan.
        sinks: Incident sinks notified for every reported regression.
        max_workers: Parallel scan threads.
        retention: Seconds of history to keep; older points are dropped
            as time advances (0 disables retention).
        keep_outcomes: Whether to accumulate every :class:`ScanOutcome`
            in :attr:`outcomes`.  Long-running services disable this so
            the scheduler's memory (and checkpoint size) stays bounded;
            :meth:`advance_to` still returns the outcomes it executed.
        metrics: Optional metrics-registry-like object (must expose
            ``inc(name, n)`` and ``observe(name, value)``); receives
            per-scan latency histograms and scan counters.

    Concurrency: :meth:`advance_to` is safe to call from multiple
    threads — the scheduling loop runs under a lock, so each due scan
    executes exactly once and monitor state is never advanced twice for
    the same due time.  Scans within one batch still run in parallel
    worker threads.

    Example::

        scheduler = DetectionScheduler(db, sinks=[CollectingSink()])
        scheduler.register("frontfaas", table1_config("frontfaas_small"),
                           series_filter={"service": "frontfaas"})
        outcomes = scheduler.advance_to(simulation_end)
    """

    def __init__(
        self,
        database: TimeSeriesDatabase,
        sinks: Sequence[IncidentSink] = (),
        max_workers: int = 4,
        retention: float = 0.0,
        keep_outcomes: bool = True,
        metrics: Optional[object] = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if retention < 0:
            raise ValueError("retention must be >= 0")
        self.database = database
        self.sinks = list(sinks)
        self.max_workers = max_workers
        self.retention = retention
        self.keep_outcomes = keep_outcomes
        self.metrics = metrics
        self._monitors: Dict[str, MonitorRegistration] = {}
        self._clock = 0.0
        self._lock = threading.Lock()
        self._advance_lock = threading.RLock()
        self.outcomes: List[ScanOutcome] = []

    @property
    def now(self) -> float:
        return self._clock

    def register(
        self,
        name: str,
        config: DetectionConfig,
        series_filter: Optional[Dict[str, str]] = None,
        change_log: Optional[ChangeLog] = None,
        samples: Sequence[StackTrace] = (),
        first_run: Optional[float] = None,
        **detector_kwargs,
    ) -> MonitorRegistration:
        """Register a monitor; its first scan happens at ``first_run``
        (default: one full window after time zero, when enough data
        exists).  Extra keyword arguments reach the underlying
        :class:`DetectionPipeline` (ablation switches,
        ``planned_changes`` ...).

        Raises:
            ValueError: On a duplicate monitor name.
        """
        if name in self._monitors:
            raise ValueError(f"monitor {name!r} already registered")
        detector = FBDetect(
            config,
            change_log=change_log,
            samples=samples,
            series_filter=series_filter,
            **detector_kwargs,
        )
        registration = MonitorRegistration(
            name=name,
            detector=detector,
            next_run=first_run if first_run is not None else config.windows.total,
        )
        self._monitors[name] = registration
        return registration

    def unregister(self, name: str) -> bool:
        """Remove a monitor; returns whether it existed."""
        return self._monitors.pop(name, None) is not None

    def monitors(self) -> List[str]:
        """Registered monitor names, sorted."""
        return sorted(self._monitors)

    def wire_metrics(self, metrics: Optional[object]) -> None:
        """Point this scheduler and every monitor pipeline at ``metrics``.

        Used after unpickling (checkpoint restore, process-pool
        round-trips), where the process-local registry is deliberately
        not part of the serialized state.
        """
        self.metrics = metrics
        for registration in self._monitors.values():
            registration.detector.pipeline.metrics = metrics

    def wire_tracer(self, tracer: Optional[object]) -> None:
        """Point every monitor pipeline's span recorder at ``tracer``.

        Same lifecycle as :meth:`wire_metrics`: trace stores are
        process-local observability state, so workers and restored
        services re-wire a fresh store rather than inheriting one
        through pickle.
        """
        for registration in self._monitors.values():
            registration.detector.pipeline.tracer = tracer

    def invalidate_incremental(self) -> None:
        """Drop every monitor's derived incremental-scan cache."""
        for registration in self._monitors.values():
            registration.detector.invalidate_incremental()

    def stale_series(self) -> List[str]:
        """Series evicted from scanning for staleness, across monitors.

        Sorted union of every monitor pipeline's
        :meth:`~repro.core.pipeline.DetectionPipeline.stale_series`
        (surfaced on the service's ``/quality`` endpoint).
        """
        stale: set = set()
        for registration in self._monitors.values():
            stale.update(registration.detector.pipeline.stale_series())
        return sorted(stale)

    def shadow_snapshot(self) -> List[dict]:
        """Shadow-detector tallies across this scheduler's monitors.

        Merged per detector ID (identity fields from the first row,
        tally fields summed), sorted by ID.  Empty when no monitor has
        a shadow scorer attached.  Surfaced on the service's
        ``/detectors`` endpoint.
        """
        merged: Dict[str, dict] = {}
        for registration in self._monitors.values():
            shadow = getattr(registration.detector.pipeline, "shadow", None)
            if shadow is None:
                continue
            merge_snapshot_rows(merged, shadow.snapshot_rows())
        return [merged[det_id] for det_id in sorted(merged)]

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------

    def advance_to(self, target: float) -> List[ScanOutcome]:
        """Advance simulated time to ``target``, running due scans.

        Scans due at the same instant run in parallel; a monitor's next
        run is scheduled one re-run interval after the current one.

        Returns:
            Outcomes of every scan executed, in completion order.

        Raises:
            ValueError: When moving backwards in time.
        """
        with self._advance_lock:
            if target < self._clock:
                raise ValueError(
                    f"cannot move time backwards ({target} < {self._clock})"
                )
            executed: List[ScanOutcome] = []

            while True:
                due_time = min(
                    (m.next_run for m in self._monitors.values() if m.next_run <= target),
                    default=None,
                )
                if due_time is None:
                    break
                self._clock = due_time
                due = [m for m in self._monitors.values() if m.next_run == due_time]
                executed.extend(self._run_batch(due, due_time))
                for monitor in due:
                    monitor.next_run = due_time + monitor.detector.config.rerun_interval
                if self.retention > 0:
                    self.database.apply_retention(due_time - self.retention)

            self._clock = max(self._clock, target)
            return executed

    def _run_batch(
        self, monitors: Sequence[MonitorRegistration], now: float
    ) -> List[ScanOutcome]:
        outcomes: List[ScanOutcome] = []

        def scan(monitor: MonitorRegistration) -> Optional[ScanOutcome]:
            started = time.perf_counter()
            try:
                result = monitor.detector.run(self.database, now)
            except Exception as error:
                # One monitor's scan blowing up must not abort the whole
                # batch (every other due monitor would silently miss its
                # tick).  The failed monitor keeps its state and is
                # re-run at its next due time.
                if self.metrics is not None:
                    self.metrics.inc("scheduler.scan_failures")
                _log.exception(
                    "monitor scan failed",
                    monitor=monitor.name,
                    now=now,
                    error=str(error),
                )
                return None
            if self.metrics is not None:
                self.metrics.observe(
                    "scheduler.scan_seconds", time.perf_counter() - started
                )
                self.metrics.inc("scheduler.scans")
                self.metrics.inc("scheduler.regressions_reported", len(result.reported))
            return ScanOutcome(monitor=monitor.name, now=now, result=result)

        if len(monitors) == 1 or self.max_workers == 1:
            # The overwhelmingly common shape — one monitor due per tick
            # on a shard — must not pay thread-pool setup/teardown per
            # advance.  Order matches pool.map (submission order), so
            # outcomes are identical either way.
            for monitor in monitors:
                outcome = scan(monitor)
                if outcome is not None:
                    outcomes.append(outcome)
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                for outcome in pool.map(scan, monitors):
                    if outcome is not None:
                        outcomes.append(outcome)

        if self.keep_outcomes:
            with self._lock:
                self.outcomes.extend(outcomes)
        for outcome in outcomes:
            for regression in outcome.result.reported:
                report = build_report(regression)
                # The alert id is deterministic in (series, change time),
                # so logs from serial, parallel, and restarted runs of
                # the same incident all join on one key.
                alert = correlation_id(
                    regression.context.metric_id,
                    regression.change_time,
                    prefix="alert",
                )
                with log_context(
                    series=regression.context.metric_id, alert=alert
                ):
                    for sink in self.sinks:
                        # One raising sink must not abort delivery to
                        # the rest (or the advance that produced the
                        # report) — same isolation contract as the
                        # streaming service's _deliver_to_sinks.
                        try:
                            sink.deliver(report)
                        except Exception as error:
                            if self.metrics is not None:
                                self.metrics.inc("scheduler.sink_errors")
                            _log.exception(
                                "sink delivery failed",
                                sink=type(sink).__name__,
                                monitor=outcome.monitor,
                                error=str(error),
                            )
                    if self.sinks:
                        _log.info(
                            "incident delivered",
                            monitor=outcome.monitor,
                            detected_at=outcome.now,
                            sinks=len(self.sinks),
                            magnitude=regression.magnitude,
                        )
        return outcomes

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle support: locks are dropped; sinks and metrics are the
        restoring process's responsibility (delivery targets and shared
        registries are process-local, not checkpoint state)."""
        state = dict(self.__dict__)
        state.pop("_lock", None)
        state.pop("_advance_lock", None)
        state["sinks"] = []
        state["metrics"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._advance_lock = threading.RLock()
