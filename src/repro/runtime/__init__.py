"""Detection runtime: the always-on monitoring service.

"For ease of operation, FBDetect runs on a common serverless platform at
Meta, scanning different time series in parallel" (§5.1).  This package
provides that operational layer: a scheduler that owns many registered
monitors (one per service/configuration pair), runs their periodic scans
in parallel worker threads, applies TSDB retention, and delivers
incident reports to pluggable sinks.
"""

from repro.runtime.scheduler import DetectionScheduler, MonitorRegistration, ScanOutcome
from repro.runtime.sinks import CollectingSink, IncidentSink, JsonLinesSink, LoggingSink

__all__ = [
    "CollectingSink",
    "DetectionScheduler",
    "IncidentSink",
    "JsonLinesSink",
    "LoggingSink",
    "MonitorRegistration",
    "ScanOutcome",
]
