"""Command-line interface.

Four subcommands mirror the production workflow:

- ``repro-fbdetect simulate`` — run a fleet simulation for a Table 1
  workload preset, injecting an optional regression, and dump the
  resulting series to a CSV.
- ``repro-fbdetect detect`` — run detection over a CSV of
  ``timestamp,value`` points with a chosen configuration and print the
  incident reports.
- ``repro-fbdetect serve-demo`` — stream a fleet simulation through the
  sharded :class:`~repro.service.StreamingDetectionService` and print
  the detection funnel plus the service's self-metrics.
- ``repro-fbdetect presets`` — list the available Table 1 presets.

Example::

    repro-fbdetect simulate --preset invoicer_short --regress 1.2 \
        --out /tmp/series.csv
    repro-fbdetect detect /tmp/series.csv --config invoicer_short
    repro-fbdetect serve-demo --preset invoicer_short --shards 4 --regress 2.0
"""

from __future__ import annotations

import argparse
import csv
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro import FBDetect, TimeSeriesDatabase, table1_config
from repro.config import TABLE1_CONFIGS
from repro.fleet import ChangeEffect, ChangeLog, CodeChange, FleetSimulator
from repro.reporting import build_report, format_report
from repro.reporting.funnel import format_funnel_table
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, StreamingDetectionService
from repro.workloads import build_preset, preset_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fbdetect",
        description="FBDetect reproduction: simulate fleets and detect regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run a fleet simulation preset")
    simulate.add_argument("--preset", default="invoicer_short", choices=preset_names())
    simulate.add_argument("--ticks", type=int, default=900, help="collection intervals")
    simulate.add_argument("--interval", type=float, default=60.0, help="seconds per tick")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--regress",
        type=float,
        default=0.0,
        help="cost factor applied to the hottest subroutine at 70%% of the run "
        "(e.g. 1.2 = +20%%); 0 disables",
    )
    simulate.add_argument("--out", required=True, help="output CSV path")
    simulate.add_argument(
        "--metric",
        default=None,
        help="series name to export (default: hottest subroutine's gCPU)",
    )

    detect = sub.add_parser("detect", help="detect regressions in a CSV series")
    detect.add_argument("csv_path", help="CSV of timestamp,value rows")
    detect.add_argument("--config", default="frontfaas_small", choices=sorted(TABLE1_CONFIGS))
    detect.add_argument(
        "--fit-windows",
        action="store_true",
        default=True,
        help="shrink the configured windows to span the CSV (default on)",
    )
    detect.add_argument("--threshold", type=float, default=None, help="override threshold")

    serve = sub.add_parser(
        "serve-demo",
        help="stream a fleet simulation through the sharded detection service",
    )
    serve.add_argument("--preset", default="invoicer_short", choices=preset_names())
    serve.add_argument("--ticks", type=int, default=600, help="collection intervals")
    serve.add_argument("--interval", type=float, default=60.0, help="seconds per tick")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--shards", type=int, default=4, help="service shard count")
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for shard advances (1 = in-thread)",
    )
    serve.add_argument(
        "--capacity", type=int, default=1024, help="per-shard ingest queue bound"
    )
    serve.add_argument(
        "--policy",
        default="block",
        choices=[p.value for p in BackpressurePolicy],
        help="backpressure policy when a shard queue fills",
    )
    serve.add_argument("--batch-size", type=int, default=256, help="TSDB flush batch")
    serve.add_argument(
        "--regress",
        type=float,
        default=2.0,
        help="cost factor applied to the hottest subroutine at 60%% of the run "
        "(e.g. 2.0 = +100%%); 0 disables",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write a service checkpoint here after the run",
    )
    serve.add_argument(
        "--obs-port",
        type=int,
        default=None,
        help="serve /metrics, /healthz and /status on this port for the "
        "duration of the run (0 = pick a free port)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs (one object per line) on stderr",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON_PATH_OR_SEED",
        help="run the demo under fault injection: a path to a fault-plan "
        "JSON file, or 'chaos:<seed>' for a generated chaos schedule",
    )
    serve.add_argument(
        "--dirty-data",
        action="store_true",
        help="damage the simulated stream before ingest (out-of-order "
        "batches, NaN bursts, dropped samples) to exercise the "
        "data-quality admission layer",
    )
    serve.add_argument(
        "--shadow",
        action="append",
        default=None,
        metavar="DETECTOR",
        help="register a challenger detector in shadow mode (repeatable; "
        "a registry type name like 'mad' or 'e_divisive', or "
        "'type:{json params}'); challengers score every scan but never "
        "alert — tallies land on /detectors",
    )
    serve.add_argument(
        "--ingest-csv",
        default=None,
        metavar="CSV_PATH",
        help="stream real data from this CSV (long form "
        "'name,timestamp,value[,tag...]' or narrow 'timestamp,value') "
        "through the connector import path instead of the fleet "
        "simulator; detection windows are fit to the file's span and a "
        "1%% relative-threshold monitor is registered over the imported "
        "series",
    )
    serve.add_argument(
        "--webhook",
        default=None,
        metavar="URL",
        help="additionally deliver incident reports to this webhook URL "
        "(Slack-shaped JSON) through the buffered, retried, deduplicated "
        "WebhookSink; delivery counters are printed at exit",
    )

    sub.add_parser("presets", help="list Table 1 workload presets")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    preset = build_preset(args.preset, seed=args.seed)
    graph = preset.service.call_graph
    probabilities = graph.inclusion_probabilities()
    hottest = max(
        (name for name in graph.names() if name != graph.root),
        key=lambda name: probabilities[name],
    )

    change_log = ChangeLog()
    if args.regress:
        change_log.add(
            CodeChange(
                "cli-injected",
                deploy_time=0.7 * args.ticks * args.interval,
                title=f"cli: regress {hottest}",
                effects=(ChangeEffect(hottest, args.regress),),
            )
        )

    simulation = FleetSimulator(
        preset.service, change_log=change_log, interval=args.interval, seed=args.seed
    ).run(args.ticks)

    metric = args.metric or f"{preset.service.name}.{hottest}.gcpu"
    series = simulation.database.get(metric)
    if series is None:
        print(f"error: no series named {metric!r}; available:", file=sys.stderr)
        for name in simulation.database.names()[:20]:
            print(f"  {name}", file=sys.stderr)
        return 2

    with open(args.out, "w", newline="", encoding="utf-8") as sink:
        writer = csv.writer(sink)
        writer.writerow(["timestamp", "value"])
        for timestamp, value in series:
            writer.writerow([f"{timestamp:.3f}", f"{value:.10g}"])
    print(f"wrote {len(series)} points of {metric} to {args.out}")
    if args.regress:
        print(f"injected x{args.regress} regression on {hottest} at tick {int(0.7 * args.ticks)}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    timestamps: List[float] = []
    values: List[float] = []
    with open(args.csv_path, newline="", encoding="utf-8") as source:
        reader = csv.reader(source)
        header = next(reader, None)
        if header and header[0] != "timestamp":
            # Headerless file: first row is data.
            timestamps.append(float(header[0]))
            values.append(float(header[1]))
        for row in reader:
            if not row:
                continue
            timestamps.append(float(row[0]))
            values.append(float(row[1]))
    if len(values) < 30:
        print("error: need at least 30 points", file=sys.stderr)
        return 2

    config = table1_config(args.config)
    if args.threshold is not None:
        from dataclasses import replace

        config = replace(config, threshold=args.threshold)
    span = timestamps[-1] - timestamps[0]
    if args.fit_windows and span > 0:
        config = config.with_windows(
            historic=span * 2 / 3, analysis=span * 2 / 9, extended=span * 1 / 9
        )

    database = TimeSeriesDatabase()
    series = database.create("cli.series", {"metric": "cli"})
    for timestamp, value in zip(timestamps, values):
        series.append(timestamp, value)

    detector = FBDetect(config)
    result = detector.run(database, now=timestamps[-1] + 1e-9)

    print(f"change points detected: {result.funnel.counts['change_points']}")
    print(f"regressions reported:   {len(result.reported)}")
    for regression in result.reported:
        print()
        print(format_report(build_report(regression)))
    return 0 if result.reported else 1


def _stream_dirty(
    args: argparse.Namespace,
    simulator: FleetSimulator,
    service: StreamingDetectionService,
    hottest: str,
) -> None:
    """Run the simulation, damage the stream, and replay it dirtily.

    The clean per-tick stream is collected first, then damaged with
    :func:`repro.fleet.dirty.dirty_stream` (local reordering everywhere,
    NaN bursts on two gCPU series, dropped samples on two series that
    are *not* the regressing one), then ingested in ten chunks with an
    advance after each — the admission layer absorbs the damage before
    detection ever looks.
    """
    from repro.fleet.dirty import DirtyDataSpec, dirty_stream
    from repro.service import Sample

    stream: List[Sample] = []
    for _ in range(args.ticks):
        tick_time = simulator.time
        simulator.tick()
        for series in simulator.database:
            latest = series.latest()
            if latest is not None and latest[0] == tick_time:
                stream.append(
                    Sample(series.name, latest[0], latest[1], dict(series.tags))
                )
    gcpu = sorted({s.name for s in stream if s.name.endswith(".gcpu")})
    quiet = [name for name in gcpu if hottest not in name]
    # One sample per series per tick: a shuffle block spanning ~3 ticks
    # displaces each series by at most ~3 positions, safely inside the
    # default admission reorder window of 16.
    n_series = len({s.name for s in stream})
    spec = DirtyDataSpec(
        seed=args.seed,
        reorder_block=3 * max(1, n_series),
        nan_series=tuple(gcpu[:2]),
        gap_series=tuple(quiet[:2]),
        gap_fraction=0.03,
    )
    dirty = dirty_stream(stream, spec)
    print(f"dirty-data drill: {len(stream)} clean samples -> {len(dirty)} "
          f"delivered (reorder block {spec.reorder_block}, NaN bursts on "
          f"{len(spec.nan_series)} series, gaps on {len(spec.gap_series)})")
    chunk = max(1, len(dirty) // 10)
    seen = 0.0
    for start in range(0, len(dirty), chunk):
        batch = dirty[start:start + chunk]
        service.ingest_many(batch)
        seen = max(seen, max(sample.timestamp for sample in batch))
        service.advance_to(seen + args.interval)
    service.advance_to(simulator.time)


def _parse_shadow_specs(raw_specs):
    """Parse ``--shadow`` values into build_detector specs.

    Accepts a bare registry type name (``mad``) or a name with inline
    JSON parameters (``e_divisive:{"n_permutations": 49}``).

    Raises:
        ValueError: On unknown types or malformed parameter JSON.
    """
    import json as json_module

    from repro.detectors import DEFAULT_REGISTRY

    specs = []
    for raw in raw_specs:
        type_name, _, params_json = raw.partition(":")
        type_name = type_name.strip()
        if type_name not in DEFAULT_REGISTRY:
            known = ", ".join(DEFAULT_REGISTRY.types())
            raise ValueError(
                f"unknown shadow detector {type_name!r} (known: {known})"
            )
        if params_json:
            try:
                params = json_module.loads(params_json)
            except json_module.JSONDecodeError as error:
                raise ValueError(
                    f"bad JSON params for shadow detector {type_name!r}: {error}"
                ) from None
            specs.append((type_name, params))
        else:
            specs.append(type_name)
    return specs


def _make_webhook_sink(args: argparse.Namespace):
    """Build the optional --webhook sink (None when the flag is absent)."""
    if not args.webhook:
        return None
    from repro.connectors import WebhookSink

    return WebhookSink(args.webhook)


def _print_webhook_summary(webhook_sink) -> None:
    """One-line delivery tally, printed after the sink has been closed."""
    if webhook_sink is None:
        return
    tally = ", ".join(
        f"{name}={count}" for name, count in sorted(webhook_sink.counters.items())
    )
    print()
    print(f"webhook delivery ({webhook_sink.url}): {tally}")


def _serve_demo_csv(args: argparse.Namespace) -> int:
    """serve-demo --ingest-csv: real data through the connector path."""
    from repro.config import DetectionConfig
    from repro.connectors import CsvImporter, ImportStats
    from repro.tsdb import WindowSpec

    importer = CsvImporter()
    stats = ImportStats()
    try:
        samples = list(importer.iter_samples(args.ingest_csv, stats))
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not samples:
        print("error: no parseable samples in the CSV", file=sys.stderr)
        return 2
    first = min(sample.timestamp for sample in samples)
    last = max(sample.timestamp for sample in samples)
    span = last - first
    if span <= 0:
        print("error: the CSV spans a single timestamp", file=sys.stderr)
        return 2

    # Fit the detection windows to the file's span (the ``detect``
    # subcommand's --fit-windows idea); imported series carry arbitrary
    # units, so the threshold is relative — 1%, loose enough to clear
    # collection noise yet tight enough for simulator-scale shifts.
    config = DetectionConfig(
        name="csv-import",
        threshold=0.01,
        relative_threshold=True,
        rerun_interval=max(args.interval, span / 10),
        windows=WindowSpec(
            historic=span * 0.5, analysis=span * 0.3, extended=span * 0.1
        ),
        long_term=False,
    )

    sink = CollectingSink()
    sinks = [sink]
    webhook_sink = _make_webhook_sink(args)
    if webhook_sink is not None:
        sinks.append(webhook_sink)
    service = StreamingDetectionService(
        n_shards=args.shards,
        workers=args.workers,
        sinks=sinks,
        queue_capacity=args.capacity,
        backpressure=BackpressurePolicy(args.policy),
        batch_size=args.batch_size,
    )
    if webhook_sink is not None:
        webhook_sink.metrics = service.metrics
    service.register_monitor(
        "csv-import", config, series_filter={"source": importer.source_name}
    )

    for sample in samples:
        stats._observe(sample, bool(service.ingest_sample(sample)))
    service.flush()
    # Walk detection through the imported span in ten steps so the
    # monitor scans on its rerun cadence instead of once in hindsight.
    steps = 10
    for index in range(1, steps + 1):
        service.advance_to(first + span * index / steps + args.interval)

    service_stats = service.stats()
    print(f"imported {stats.offered} samples from {args.ingest_csv} "
          f"({stats.accepted} accepted, {stats.bad_rows} malformed rows "
          f"skipped)")
    print(f"{stats.series} series spanning t=[{first:.0f}, {last:.0f}] "
          f"through {args.shards} shard(s), {args.workers} worker(s)")
    print()
    print(service_stats.render())
    print()
    print(f"incident reports delivered: {len(sink.reports)}")
    for report in sink.reports:
        print(f"  - {report.metric_id} ({report.relative_magnitude:+.1%} "
              f"at t={report.change_time:.0f})")
    service.close()
    _print_webhook_summary(webhook_sink)
    return 0


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("error: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.capacity < 1 or args.batch_size < 1:
        print("error: --capacity and --batch-size must be positive", file=sys.stderr)
        return 2
    if args.ingest_csv:
        return _serve_demo_csv(args)
    preset = build_preset(args.preset, seed=args.seed)
    graph = preset.service.call_graph
    probabilities = graph.inclusion_probabilities()
    hottest = max(
        (name for name in graph.names() if name != graph.root),
        key=lambda name: probabilities[name],
    )

    span = args.ticks * args.interval
    change_log = ChangeLog()
    if args.regress:
        change_log.add(
            CodeChange(
                "cli-injected",
                deploy_time=0.6 * span,
                title=f"cli: regress {hottest}",
                effects=(ChangeEffect(hottest, args.regress),),
            )
        )

    simulator = FleetSimulator(
        preset.service, change_log=change_log, interval=args.interval, seed=args.seed
    )

    # Fit the preset's detection windows and cadence to the demo's span.
    config = replace(
        preset.config.with_windows(
            historic=span * 0.5, analysis=span * 0.3, extended=span * 0.1
        ),
        rerun_interval=max(args.interval, span / 10),
    )

    if args.log_json:
        from repro.obs.logging import configure_json_logging

        configure_json_logging()

    injector = None
    if args.fault_plan:
        from repro.faults import FaultInjector, FaultPlan

        if args.fault_plan.startswith("chaos:"):
            try:
                chaos_seed = int(args.fault_plan.split(":", 1)[1])
            except ValueError:
                print("error: --fault-plan chaos:<seed> needs an integer seed",
                      file=sys.stderr)
                return 2
            plan = FaultPlan.chaos(chaos_seed, n_shards=args.shards)
        else:
            try:
                plan = FaultPlan.from_json_file(args.fault_plan)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        injector = FaultInjector(plan)
        print(f"fault injection armed: seed={plan.seed}, "
              f"{len(plan.specs)} spec(s)")

    shadow_specs = None
    if args.shadow:
        try:
            shadow_specs = _parse_shadow_specs(args.shadow)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    sink = CollectingSink()
    sinks = [sink]
    webhook_sink = _make_webhook_sink(args)
    if webhook_sink is not None:
        sinks.append(webhook_sink)
    service = StreamingDetectionService(
        n_shards=args.shards,
        workers=args.workers,
        sinks=sinks,
        queue_capacity=args.capacity,
        backpressure=BackpressurePolicy(args.policy),
        batch_size=args.batch_size,
        fault_injector=injector,
        advance_deadline=5.0 if injector is not None else None,
    )
    if webhook_sink is not None:
        webhook_sink.metrics = service.metrics
    service.register_monitor(
        args.preset, config, series_filter={"metric": "gcpu"},
        shadow=shadow_specs,
    )
    if shadow_specs:
        snapshot_rows = service.detectors_snapshot()["detectors"]
        names = ", ".join(row["id"] for row in snapshot_rows)
        print(f"shadow mode armed: {names} (alert-inert challengers)")

    obs_server = None
    if args.obs_port is not None:
        from repro.obs import ObservabilityServer

        obs_server = ObservabilityServer(service, port=args.obs_port).start()
        print(f"observability endpoints at {obs_server.url} "
              "(/metrics /healthz /status /faults /quality /detectors)")

    if args.dirty_data:
        _stream_dirty(args, simulator, service, hottest)
    else:
        for _ in range(args.ticks):
            tick_time = simulator.time
            simulator.tick()
            for series in simulator.database:
                latest = series.latest()
                if latest is not None and latest[0] == tick_time:
                    service.ingest(
                        series.name, latest[0], latest[1], dict(series.tags)
                    )
            service.advance_to(simulator.time)
    service.flush()

    stats = service.stats()
    snapshot = service.metrics.snapshot()
    print(f"streamed {stats.accepted} samples over {args.ticks} ticks "
          f"({len(simulator.database)} series) through {args.shards} shard(s), "
          f"{args.workers} worker(s)")
    if args.regress:
        print(f"injected x{args.regress} regression on {hottest} "
              f"at t={0.6 * span:.0f}")
    print()
    print(format_funnel_table({args.preset: service.funnel}))
    print()
    print(stats.render())
    print()
    hits = snapshot["counters"].get("pipeline.incremental.hits", 0.0)
    misses = snapshot["counters"].get("pipeline.incremental.misses", 0.0)
    decisions = hits + misses
    rate = hits / decisions if decisions else 0.0
    print(f"incremental scan cache: {hits:.0f} hits / {misses:.0f} full scans "
          f"({rate:.1%} hit rate)")
    shard_hist = snapshot["histograms"].get("service.shard_advance_seconds")
    if shard_hist and shard_hist["count"]:
        histogram = service.metrics.histogram("service.shard_advance_seconds")
        print(f"per-shard advance latency: mean {histogram.mean * 1e3:.2f} ms, "
              f"p99 {histogram.quantile(0.99) * 1e3:.2f} ms "
              f"over {shard_hist['count']} advances")
    print()
    print(f"incident reports delivered: {len(sink.reports)}")
    for report in sink.reports:
        print(f"  - {report.metric_id} (+{report.relative_magnitude:.1%} "
              f"at t={report.change_time:.0f})")
    quality = service.quality_snapshot()
    if quality["enabled"]:
        counters = quality["counters"]
        print()
        print(f"data quality: {counters.get('admitted', 0)} admitted, "
              f"{counters.get('quarantined', 0)} quarantined, "
              f"{counters.get('repaired', 0)} repaired, "
              f"{counters.get('reordered', 0)} reordered, "
              f"{counters.get('counter_resets', 0)} counter resets, "
              f"{counters.get('duplicates', 0)} duplicates")
        stale = quality["stale_series"]
        if stale:
            print(f"stale series evicted from scheduling: {', '.join(stale)}")
    detectors = service.detectors_snapshot()
    if detectors["enabled"]:
        print()
        print("shadow detectors (alert-inert challengers):")
        for row in detectors["detectors"]:
            tally = row["tally"]
            print(f"  {row['id']}: scans={tally['scans']} "
                  f"fired={tally['fired']} agree={tally['agree_fired']} "
                  f"shadow_only={tally['shadow_only']} "
                  f"primary_only={tally['primary_only']} "
                  f"errors={tally['errors']}")
    if injector is not None:
        fired = injector.counts()
        total = sum(fired.values())
        print()
        print(f"faults injected: {total}"
              + (f" ({', '.join(f'{k}={v}' for k, v in sorted(fired.items()))})"
                 if fired else ""))
        retries = snapshot["counters"].get("advance.retries", 0.0)
        fallbacks = snapshot["counters"].get("advance.fallbacks", 0.0)
        ckpt_fallbacks = snapshot["counters"].get("checkpoint.fallbacks", 0.0)
        print(f"recoveries: advance retries={retries:.0f}, "
              f"in-process fallbacks={fallbacks:.0f}, "
              f"checkpoint fallbacks={ckpt_fallbacks:.0f}")
        degraded = service.degraded_reasons()
        print("degraded shards at exit: "
              + (str(degraded) if degraded else "none (recovered)"))
    if args.checkpoint_dir:
        path = service.checkpoint(args.checkpoint_dir)
        print(f"\ncheckpoint written to {path}")
    if obs_server is not None:
        # Self-scrape before shutdown so the demo proves the endpoints
        # answer over real HTTP, not just in-process.
        import urllib.request

        print()
        for endpoint in ("/metrics", "/healthz", "/status", "/quality",
                         "/detectors"):
            try:
                with urllib.request.urlopen(
                    obs_server.url + endpoint, timeout=5.0
                ) as response:
                    print(f"self-scrape {endpoint}: HTTP {response.status}, "
                          f"{len(response.read())} bytes")
            except OSError as error:  # pragma: no cover - diagnostics only
                print(f"self-scrape {endpoint}: failed ({error})")
        print()
        print(service.funnel_trace().render())
        obs_server.stop()
    service.close()
    _print_webhook_summary(webhook_sink)
    return 0


def _cmd_presets(_: argparse.Namespace) -> int:
    for key in preset_names():
        preset = build_preset(key)
        print(f"{key:20s} {preset.config.name:22s} {preset.description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "detect": _cmd_detect,
        "serve-demo": _cmd_serve_demo,
        "presets": _cmd_presets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
