"""Durable checkpoint/restore for the streaming service.

Layout of a checkpoint directory (``keep_generations=3`` shown)::

    manifest.json          # pointer copy of the newest manifest
    manifest.g7.json       # newest generation's manifest
    manifest.g6.json       # previous generations, kept for fallback
    manifest.g5.json
    shard-0.g7.pkl         # per-generation shard blobs (TSDB + scheduler
    shard-0.g6.pkl         # + queue), named after their generation so
    ...                    # generations never overwrite each other

Manifests are JSON so operators can inspect a checkpoint without
unpickling anything; each shard blob carries a SHA-256 recorded in its
manifest so truncated or corrupted blobs are detected at load time.

Durability is layered:

- every file is written atomically (temp file + ``os.replace``) with an
  ``fsync`` of the file *and* of the directory, so a crash or power
  loss cannot leave a half-written blob under a final name;
- the generation's own manifest is written after all its blobs, and the
  ``manifest.json`` pointer is written last of all, so a crash
  mid-checkpoint leaves the previous generation fully loadable;
- :meth:`CheckpointManager.load` verifies every checksum and, when the
  newest generation fails (corrupt blob, truncated file, damaged
  manifest), falls back to the next-newest intact generation instead of
  refusing to start — the degradation is reported via
  :meth:`CheckpointManager.last_load`;
- old generations beyond ``keep_generations`` are pruned after a
  successful save, along with any blob no retained manifest references.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CheckpointError", "CheckpointManager", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"

_GEN_MANIFEST_RE = re.compile(r"^manifest\.g(\d+)\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or from an unknown version."""


class CheckpointManager:
    """Saves and loads generational checkpoints in one directory.

    Args:
        directory: Checkpoint directory (created on first save).
        keep_generations: How many complete generations to retain.  More
            than one is what makes corruption survivable: when the
            newest generation fails its checksums, :meth:`load` falls
            back to the next intact one.
        fault_injector: Optional :class:`~repro.faults.FaultInjector`
            consulted at the ``checkpoint.blob`` / ``checkpoint.manifest``
            sites; when a spec fires, the *mutated* bytes are written
            while the manifest records the pristine SHA-256 — latent
            damage, detected at load time like real disk corruption.

    Example::

        manager = CheckpointManager("/var/lib/repro/ckpt")
        manager.save({"clock": 5400.0}, {0: shard0_state, 1: shard1_state})
        meta, shards = manager.load()
    """

    def __init__(
        self,
        directory: str,
        keep_generations: int = 3,
        fault_injector: Optional[Any] = None,
    ) -> None:
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self.directory = str(directory)
        self.keep_generations = keep_generations
        self.fault_injector = fault_injector
        # Filled by load(): which generation satisfied it and how many
        # newer generations had to be skipped as corrupt.
        self._last_load: Optional[Dict[str, object]] = None

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def exists(self) -> bool:
        """Whether a loadable manifest is present."""
        return os.path.isfile(self.manifest_path) or bool(self._generations())

    def last_load(self) -> Optional[Dict[str, object]]:
        """Info about the most recent :meth:`load` on this manager.

        Returns ``None`` before any load, else a dict with ``generation``
        (the one that satisfied the load), ``fallbacks`` (how many newer
        generations were skipped as corrupt), and ``skipped`` (their
        error strings, newest first).
        """
        return self._last_load

    def save(self, meta: dict, shards: Dict[object, object]) -> str:
        """Write one new checkpoint generation; returns the manifest path.

        Args:
            meta: JSON-serializable service-level state (clock, ledger,
                metrics snapshot ...).
            shards: Picklable per-shard state, keyed by shard id.
        """
        os.makedirs(self.directory, exist_ok=True)
        generation = (self._generations() or [0])[-1] + 1
        shard_index = {}
        for shard_id, state in shards.items():
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            filename = f"shard-{shard_id}.g{generation}.pkl"
            payload = blob
            if self.fault_injector is not None:
                mutated = self.fault_injector.corrupt_payload("checkpoint.blob", blob)
                if mutated is not None:
                    payload = mutated
            self._atomic_write(filename, payload)
            # The SHA is always of the *pristine* blob: injected
            # corruption stays latent until load, like the real thing.
            shard_index[str(shard_id)] = {
                "file": filename,
                "sha256": hashlib.sha256(blob).hexdigest(),
                "bytes": len(blob),
            }
        manifest = {
            "version": CHECKPOINT_VERSION,
            "generation": generation,
            "meta": meta,
            "shards": shard_index,
        }
        encoded = json.dumps(manifest, indent=2, sort_keys=True).encode()
        manifest_payload = encoded
        if self.fault_injector is not None:
            mutated = self.fault_injector.corrupt_payload("checkpoint.manifest", encoded)
            if mutated is not None:
                manifest_payload = mutated
        self._atomic_write(f"manifest.g{generation}.json", manifest_payload)
        # The pointer is written last: until it lands, loaders see the
        # previous generation.  It gets the same (possibly corrupted)
        # bytes — load() falls back to per-generation manifests when the
        # pointer is damaged.
        self._atomic_write(MANIFEST_NAME, manifest_payload)
        self._prune(keep_from=generation)
        return self.manifest_path

    def load(self) -> Tuple[dict, Dict[str, object]]:
        """Load the newest intact generation; ``(meta, {shard_id: state})``.

        Shard ids come back as strings (JSON keys); callers that used
        int ids convert back.

        Generations are tried newest-first; one that fails (unreadable
        manifest, checksum mismatch, missing blob) is skipped and the
        next is tried.  :meth:`last_load` reports which generation won
        and what was skipped.

        Raises:
            CheckpointError: When no manifest exists at all, the newest
                manifest has an unsupported version, or every generation
                is corrupt.
        """
        generations = self._generations()
        candidates: List[Tuple[Optional[int], str]] = [
            (gen, os.path.join(self.directory, f"manifest.g{gen}.json"))
            for gen in reversed(generations)
        ]
        if not candidates:
            # Pre-generational layout (or an empty directory): the
            # pointer manifest is the only candidate.
            candidates = [(None, self.manifest_path)]
        skipped: List[str] = []
        for generation, path in candidates:
            try:
                meta, shards = self._load_manifest(path)
            except CheckpointError as error:
                if len(candidates) == 1:
                    raise
                skipped.append(str(error))
                continue
            self._last_load = {
                "generation": generation,
                "fallbacks": len(skipped),
                "skipped": skipped,
            }
            return meta, shards
        raise CheckpointError(
            f"every checkpoint generation in {self.directory} is corrupt: "
            + "; ".join(skipped)
        )

    # -- internals -------------------------------------------------------

    def _load_manifest(self, path: str) -> Tuple[dict, Dict[str, object]]:
        manifest = self._read_manifest(path)
        version = manifest.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version!r} != supported {CHECKPOINT_VERSION}"
            )
        shards: Dict[str, object] = {}
        for shard_id, entry in manifest.get("shards", {}).items():
            blob_path = os.path.join(self.directory, entry["file"])
            try:
                with open(blob_path, "rb") as source:
                    blob = source.read()
            except OSError as error:
                raise CheckpointError(
                    f"cannot read shard blob {blob_path}: {error}"
                ) from error
            digest = hashlib.sha256(blob).hexdigest()
            if digest != entry["sha256"]:
                raise CheckpointError(
                    f"shard {shard_id} checksum mismatch "
                    f"(expected {entry['sha256'][:12]}…, got {digest[:12]}…)"
                )
            shards[shard_id] = pickle.loads(blob)
        return manifest.get("meta", {}), shards

    def _read_manifest(self, path: Optional[str] = None) -> dict:
        path = path or self.manifest_path
        try:
            with open(path, "r", encoding="utf-8") as source:
                return json.load(source)
        except FileNotFoundError as error:
            raise CheckpointError(f"no checkpoint manifest at {path}") from error
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(f"unreadable manifest: {error}") from error

    def _generations(self) -> List[int]:
        """Sorted generation numbers with an on-disk manifest."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        found = []
        for name in names:
            match = _GEN_MANIFEST_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def _prune(self, keep_from: int) -> None:
        """Drop generations older than the retained window, and orphans.

        A blob is an orphan when no retained *readable* manifest
        references it — which also sweeps blobs from a shard-count
        shrink and files from the pre-generational layout.
        """
        retained = [
            gen
            for gen in self._generations()
            if gen > keep_from - self.keep_generations
        ]
        referenced = {MANIFEST_NAME}
        for gen in retained:
            referenced.add(f"manifest.g{gen}.json")
            try:
                manifest = self._read_manifest(
                    os.path.join(self.directory, f"manifest.g{gen}.json")
                )
            except CheckpointError:
                continue  # keep the manifest itself; its blobs may be orphaned
            for entry in manifest.get("shards", {}).values():
                referenced.add(entry["file"])
        for name in os.listdir(self.directory):
            if name in referenced or name.endswith(".tmp"):
                continue
            if _GEN_MANIFEST_RE.match(name) or (
                name.startswith("shard-") and name.endswith(".pkl")
            ):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
        self._fsync_directory()

    def _atomic_write(self, filename: str, payload: bytes) -> None:
        path = os.path.join(self.directory, filename)
        temp = path + ".tmp"
        with open(temp, "wb") as sink:
            sink.write(payload)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(temp, path)
        # fsync the directory too: os.replace updates the directory
        # entry, and without this a power loss can forget the rename
        # even though the file's bytes are durable.
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir-fsync
            pass
        finally:
            os.close(fd)
