"""Durable checkpoint/restore for the streaming service.

Layout of a checkpoint directory::

    manifest.json     # version, generation, service meta, shard index
    shard-<id>.pkl    # pickled per-shard state (TSDB + scheduler + queue)

The manifest is JSON so operators can inspect a checkpoint without
unpickling anything; each shard blob carries a SHA-256 recorded in the
manifest so truncated or corrupted blobs are detected at load time.
Writes are atomic per file (temp file + ``os.replace``) and the manifest
is written *last*, so a crash mid-checkpoint leaves the previous
checkpoint loadable.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Dict, Tuple

__all__ = ["CheckpointError", "CheckpointManager", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or from an unknown version."""


class CheckpointManager:
    """Saves and loads one checkpoint per directory.

    Args:
        directory: Checkpoint directory (created on first save).

    Example::

        manager = CheckpointManager("/var/lib/repro/ckpt")
        manager.save({"clock": 5400.0}, {0: shard0_state, 1: shard1_state})
        meta, shards = manager.load()
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def exists(self) -> bool:
        """Whether a loadable manifest is present."""
        return os.path.isfile(self.manifest_path)

    def save(self, meta: dict, shards: Dict[object, object]) -> str:
        """Write a checkpoint; returns the manifest path.

        Args:
            meta: JSON-serializable service-level state (clock, ledger,
                metrics snapshot ...).
            shards: Picklable per-shard state, keyed by shard id.
        """
        os.makedirs(self.directory, exist_ok=True)
        generation = 0
        if self.exists():
            try:
                generation = self._read_manifest().get("generation", 0)
            except CheckpointError:
                pass  # overwrite a corrupt checkpoint
        shard_index = {}
        for shard_id, state in shards.items():
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            filename = f"shard-{shard_id}.pkl"
            self._atomic_write(filename, blob)
            shard_index[str(shard_id)] = {
                "file": filename,
                "sha256": hashlib.sha256(blob).hexdigest(),
                "bytes": len(blob),
            }
        manifest = {
            "version": CHECKPOINT_VERSION,
            "generation": generation + 1,
            "meta": meta,
            "shards": shard_index,
        }
        self._atomic_write(
            MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True).encode()
        )
        return self.manifest_path

    def load(self) -> Tuple[dict, Dict[str, object]]:
        """Load the checkpoint; returns ``(meta, {shard_id: state})``.

        Shard ids come back as strings (JSON keys); callers that used
        int ids convert back.

        Raises:
            CheckpointError: On a missing manifest, version mismatch, or
                checksum failure.
        """
        manifest = self._read_manifest()
        version = manifest.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version!r} != supported {CHECKPOINT_VERSION}"
            )
        shards: Dict[str, object] = {}
        for shard_id, entry in manifest.get("shards", {}).items():
            path = os.path.join(self.directory, entry["file"])
            try:
                with open(path, "rb") as source:
                    blob = source.read()
            except OSError as error:
                raise CheckpointError(f"cannot read shard blob {path}: {error}") from error
            digest = hashlib.sha256(blob).hexdigest()
            if digest != entry["sha256"]:
                raise CheckpointError(
                    f"shard {shard_id} checksum mismatch "
                    f"(expected {entry['sha256'][:12]}…, got {digest[:12]}…)"
                )
            shards[shard_id] = pickle.loads(blob)
        return manifest.get("meta", {}), shards

    # -- internals -------------------------------------------------------

    def _read_manifest(self) -> dict:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as source:
                return json.load(source)
        except FileNotFoundError as error:
            raise CheckpointError(
                f"no checkpoint manifest at {self.manifest_path}"
            ) from error
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(f"unreadable manifest: {error}") from error

    def _atomic_write(self, filename: str, payload: bytes) -> None:
        path = os.path.join(self.directory, filename)
        temp = path + ".tmp"
        with open(temp, "wb") as sink:
            sink.write(payload)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(temp, path)
