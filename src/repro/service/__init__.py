"""Streaming detection service (the operational scale-out layer).

The paper's FBDetect runs as a serverless fleet scanning ~800k
subroutine-level series in parallel (§5, Figure 6).  This package is the
single-process seed of that deployment shape: a sharded streaming
service that routes incoming samples to per-shard ingest workers with
bounded queues and explicit backpressure, batch-flushes them into
per-shard TSDBs, runs each shard's :class:`DetectionScheduler`, survives
restarts through checkpoints, and measures itself with a built-in
metrics registry (the §6.6 "overhead of the detector itself" story).

Modules:

- :mod:`repro.service.router` — consistent-hash shard routing.
- :mod:`repro.service.ingest` — bounded ingest queues + backpressure.
- :mod:`repro.service.checkpoint` — durable checkpoint/restore.
- :mod:`repro.service.metrics` — counters, gauges, latency histograms.
- :mod:`repro.service.parallel` — multi-process shard execution.
- :mod:`repro.service.service` — the composed streaming service.

Observability (structured logs, funnel spans, and the ``/metrics`` +
``/healthz`` + ``/status`` HTTP surface) lives in :mod:`repro.obs`; the
service exposes it through :meth:`StreamingDetectionService.healthz`,
:meth:`~StreamingDetectionService.status_snapshot`, and
:class:`repro.obs.ObservabilityServer`.
"""

from repro.service.checkpoint import CheckpointError, CheckpointManager
from repro.service.ingest import BackpressurePolicy, Sample, ShardIngestWorker
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.parallel import ParallelShardExecutor, ShardAdvanceResult
from repro.service.router import ConsistentHashRouter
from repro.service.service import ServiceStats, ShardStats, StreamingDetectionService

__all__ = [
    "BackpressurePolicy",
    "CheckpointError",
    "CheckpointManager",
    "ConsistentHashRouter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ParallelShardExecutor",
    "Sample",
    "ServiceStats",
    "ShardAdvanceResult",
    "ShardIngestWorker",
    "ShardStats",
    "StreamingDetectionService",
]
