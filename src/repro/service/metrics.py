"""Self-metrics: the service measures its own pipeline.

FBDetect's §6.6 overhead analysis only makes sense once the detector is
itself instrumented.  This module provides the three classic instrument
kinds — :class:`Counter`, :class:`Gauge`, and :class:`Histogram` (fixed
log-spaced buckets, built for latency-in-seconds observations) — plus a
:class:`MetricsRegistry` that owns them by name, renders a Prometheus
style text exposition, and snapshots/restores itself for checkpoints.

The registry is deliberately decoupled from the rest of the codebase:
consumers (:class:`~repro.core.pipeline.DetectionPipeline`,
:class:`~repro.runtime.scheduler.DetectionScheduler`, the service) take
an *optional* registry-like object and call only ``inc`` / ``observe`` /
``set_gauge`` / ``timer`` on it, so no core module imports this one.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

#: Log-spaced latency buckets (seconds): 100µs .. 30s, plus +inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class _Lockable:
    """Mixin: a per-instrument lock that survives pickling."""

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(_Lockable):
    """A monotonically increasing count."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0).

        Raises:
            ValueError: On a negative increment.
        """
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Lockable):
    """A value that can go up and down (queue depth, shard count ...)."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Lockable):
    """Fixed-bucket histogram with quantile estimation.

    Buckets are cumulative-style upper bounds (like Prometheus); one
    implicit +inf bucket catches the overflow.  Quantiles are estimated
    by linear interpolation within the winning bucket — exact enough for
    p50/p99 pipeline-latency reporting.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__()
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (q in [0, 1]); 0 when empty.

        Raises:
            ValueError: When ``q`` is outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for i, count in enumerate(self._counts):
                previous = cumulative
                cumulative += count
                if cumulative >= rank and count > 0:
                    lower = self.bounds[i - 1] if i > 0 else min(self._min, self.bounds[0])
                    upper = self.bounds[i] if i < len(self.bounds) else self._max
                    lower = max(lower, self._min)
                    upper = min(upper, self._max) if upper >= lower else lower
                    fraction = (rank - previous) / count
                    return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            return self._max

    def state(self) -> dict:
        """Raw internals (bucket counts included) for snapshots."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Raises:
            ValueError: When the bucket bounds differ (merging would
                misattribute observations).
        """
        if [float(b) for b in state["bounds"]] != list(self.bounds):
            raise ValueError("cannot merge histograms with different buckets")
        with self._lock:
            self._counts = [
                mine + theirs for mine, theirs in zip(self._counts, state["counts"])
            ]
            self._count += state["count"]
            self._sum += state["sum"]
            if state["min"] is not None:
                self._min = min(self._min, state["min"])
            if state["max"] is not None:
                self._max = max(self._max, state["max"])


class MetricsRegistry(_Lockable):
    """Named instruments plus convenience record/snapshot/render APIs.

    Example::

        metrics = MetricsRegistry()
        metrics.inc("service.ingest.accepted", 128)
        with metrics.timer("pipeline.run_seconds"):
            run()
        print(metrics.render_text())
    """

    def __init__(self) -> None:
        super().__init__()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) --------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(buckets)
            return histogram

    # -- convenience recorders -----------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager observing elapsed seconds into histogram ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state of every instrument.

        Histograms include raw bucket counts so :meth:`restore` is exact.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.state() for name, h in sorted(histograms.items())},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The parallel-executor merge path: worker processes record scan
        latencies and pipeline counters into their own fresh registries,
        then the parent folds the returned snapshots in.  Counters and
        histogram buckets add; gauges take the incoming value (last
        writer wins, matching single-process semantics).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            self.histogram(name, state["bounds"]).merge_state(state)

    def restore(self, snapshot: dict) -> None:
        """Reset this registry to a :meth:`snapshot`'s state."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, state["bounds"])
            histogram._counts = list(state["counts"])
            histogram._count = state["count"]
            histogram._sum = state["sum"]
            histogram._min = state["min"] if state["min"] is not None else float("inf")
            histogram._max = state["max"] if state["max"] is not None else float("-inf")

    def render_text(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        lines: List[str] = []
        snapshot = self.snapshot()
        for name, value in snapshot["counters"].items():
            metric = _sanitize(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value:g}")
        for name, value in snapshot["gauges"].items():
            metric = _sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value:g}")
        for name, state in snapshot["histograms"].items():
            metric = _sanitize(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(state["bounds"], state["counts"]):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += state["counts"][-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {state['sum']:g}")
            lines.append(f"{metric}_count {state['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    """Map a dotted metric name onto the exposition charset."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)
