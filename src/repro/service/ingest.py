"""Per-shard ingest: bounded queues, batch flushing, backpressure.

Each shard owns one :class:`ShardIngestWorker`.  Producers ``offer()``
samples; the worker buffers them in a bounded queue and batch-flushes
into the shard's TSDB through
:meth:`~repro.tsdb.database.TimeSeriesDatabase.write_batch`.  When the
queue is full, the configured :class:`BackpressurePolicy` decides what
gives:

- ``BLOCK`` — the *producer* pays: the worker synchronously flushes one
  batch to make room (caller-runs backpressure — nothing is ever lost,
  ingestion slows to the flush rate).
- ``DROP_OLDEST`` — the oldest buffered sample is evicted (bounded
  staleness; freshest data wins).
- ``REJECT`` — the offer fails and the producer is told so (load
  shedding at the edge).

Every policy outcome has a counter, both on the worker (plain ints that
ride along in checkpoints) and in the optional shared
:class:`~repro.service.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["Sample", "BackpressurePolicy", "ShardIngestWorker"]


@dataclass(frozen=True)
class Sample:
    """One streamed metric point.

    Attributes:
        name: Series name (also the default routing key).
        timestamp: Sample time (seconds).
        value: Metric value.
        tags: Series tags, applied on series auto-creation.
    """

    name: str
    timestamp: float
    value: float
    tags: Mapping[str, str] = field(default_factory=dict)


class BackpressurePolicy(str, enum.Enum):
    """What happens when a shard's ingest queue is full."""

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    REJECT = "reject"


class ShardIngestWorker:
    """Bounded ingest queue + batch flusher for one shard.

    Args:
        shard_id: Owning shard (labels counters and checkpoints).
        database: The shard's TSDB.
        capacity: Queue bound; offers beyond it trigger the policy.
        policy: Backpressure policy (see module docstring).
        batch_size: Samples per TSDB write batch.
        metrics: Optional shared metrics registry.

    Thread-safe: producers may ``offer()`` concurrently with ``flush()``.
    """

    def __init__(
        self,
        shard_id: object,
        database: TimeSeriesDatabase,
        capacity: int = 1024,
        policy: BackpressurePolicy = BackpressurePolicy.DROP_OLDEST,
        batch_size: int = 256,
        metrics: Optional[Any] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.shard_id = shard_id
        self.database = database
        self.capacity = capacity
        self.policy = BackpressurePolicy(policy)
        self.batch_size = batch_size
        self.metrics = metrics
        self._queue: Deque[Sample] = deque()
        self._lock = threading.RLock()
        # Plain-int counters: picklable, cheap, checkpointed with the shard.
        self.offered = 0
        self.accepted = 0
        self.flushed = 0
        self.dropped_oldest = 0
        self.rejected = 0
        self.blocking_flushes = 0
        self.flushes = 0

    # -- producer side --------------------------------------------------

    def offer(self, sample: Sample) -> bool:
        """Enqueue one sample, applying backpressure when full.

        Returns:
            ``True`` when the sample was buffered; ``False`` only under
            the ``REJECT`` policy with a full queue.
        """
        with self._lock:
            self.offered += 1
            if len(self._queue) >= self.capacity:
                if self.policy is BackpressurePolicy.REJECT:
                    self.rejected += 1
                    self._inc("ingest.rejected")
                    return False
                if self.policy is BackpressurePolicy.DROP_OLDEST:
                    self._queue.popleft()
                    self.dropped_oldest += 1
                    self._inc("ingest.dropped_oldest")
                else:  # BLOCK: caller-runs — flush a batch to make room.
                    self.blocking_flushes += 1
                    self._inc("ingest.blocking_flushes")
                    self._flush_batch()
            self._queue.append(sample)
            self.accepted += 1
            self._inc("ingest.accepted")
            return True

    def offer_many(self, samples: Iterable[Sample]) -> int:
        """Offer each sample; returns how many were accepted."""
        return sum(1 for sample in samples if self.offer(sample))

    @property
    def pending(self) -> int:
        """Samples buffered but not yet flushed."""
        return len(self._queue)

    # -- flush side ------------------------------------------------------

    def flush(self) -> int:
        """Drain the whole queue into the TSDB in ``batch_size`` batches.

        Returns:
            Number of samples written.
        """
        written = 0
        with self._lock:
            while self._queue:
                written += self._flush_batch()
        return written

    def _flush_batch(self) -> int:
        """Write up to one batch (caller holds the lock)."""
        if not self._queue:
            return 0
        batch = [
            self._queue.popleft()
            for _ in range(min(self.batch_size, len(self._queue)))
        ]
        started = time.perf_counter()
        written = self.database.write_batch(
            (s.name, s.timestamp, s.value, s.tags) for s in batch
        )
        self.flushed += written
        self.flushes += 1
        if self.metrics is not None:
            self.metrics.inc("ingest.flushed", written)
            self.metrics.observe("ingest.flush_seconds", time.perf_counter() - started)
        return written

    # -- state-swap support (parallel executor) --------------------------

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Hold the queue lock for the duration of the block.

        The parallel executor serializes shard state from the service
        thread while producers may still be offering; pausing makes the
        pickled snapshot internally consistent (offers block briefly,
        then land in the live queue and are carried over via
        :meth:`drain_pending` / :meth:`requeue` when the advanced state
        is installed).
        """
        with self._lock:
            yield

    def drain_pending(self) -> List[Sample]:
        """Remove and return everything buffered, without flushing it.

        Used when swapping in a worker's advanced state: samples offered
        to the *old* queue after the snapshot was taken are drained here
        and re-queued on the new state, so nothing is lost or counted
        twice.
        """
        with self._lock:
            pending = list(self._queue)
            self._queue.clear()
            return pending

    def requeue(self, samples: Iterable[Sample]) -> None:
        """Re-buffer samples that were already counted as accepted.

        Unlike :meth:`offer`, this does not touch the offered/accepted
        counters (the samples were counted on first offer) and does not
        apply backpressure: the carried-over burst is bounded by what
        producers managed to offer during one advance cycle.
        """
        with self._lock:
            self._queue.extend(samples)

    # -- introspection / pickling ----------------------------------------

    def counters(self) -> Dict[str, int]:
        """Backpressure and flush counters as a plain dict."""
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "flushed": self.flushed,
            "pending": self.pending,
            "dropped_oldest": self.dropped_oldest,
            "rejected": self.rejected,
            "blocking_flushes": self.blocking_flushes,
            "flushes": self.flushes,
        }

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        # The shared registry is restored by the service, not the pickle.
        state["metrics"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
