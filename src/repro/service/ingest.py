"""Per-shard ingest: bounded queues, batch flushing, backpressure.

Each shard owns one :class:`ShardIngestWorker`.  Producers ``offer()``
samples; the worker buffers them in a bounded queue and batch-flushes
into the shard's TSDB through
:meth:`~repro.tsdb.database.TimeSeriesDatabase.write_batch`.  When the
queue is full, the configured :class:`BackpressurePolicy` decides what
gives:

- ``BLOCK`` — the *producer* pays: the worker synchronously flushes one
  batch to make room (caller-runs backpressure — nothing is ever lost,
  ingestion slows to the flush rate).
- ``DROP_OLDEST`` — the oldest buffered sample is evicted (bounded
  staleness; freshest data wins).
- ``REJECT`` — the offer fails and the producer is told so (load
  shedding at the edge).

Every policy outcome has a counter, both on the worker (plain ints that
ride along in checkpoints) and in the optional shared
:class:`~repro.service.metrics.MetricsRegistry`.

When an :class:`~repro.quality.admission.AdmissionController` is
attached, every offer passes through it first (under the same queue
lock): quarantined points are dropped before they can reach the TSDB,
repaired points are enqueued in their repaired form, and out-of-order
points are held in the controller's reordering buffer — released back
into the *front* of the queue (they predate everything buffered) when
the buffer overflows or at a flush/advance boundary, so backfill lands
as one batched merge.  The controller pickles with the worker, so
quarantine state and reorder buffers ride checkpoints and parallel
shard advances like every other counter.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.quality.admission import ADMIT, DROP
from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["Sample", "BackpressurePolicy", "ShardIngestWorker"]


@dataclass(frozen=True)
class Sample:
    """One streamed metric point.

    Attributes:
        name: Series name (also the default routing key).
        timestamp: Sample time (seconds).
        value: Metric value.
        tags: Series tags, applied on series auto-creation.
    """

    name: str
    timestamp: float
    value: float
    tags: Mapping[str, str] = field(default_factory=dict)


class BackpressurePolicy(str, enum.Enum):
    """What happens when a shard's ingest queue is full."""

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    REJECT = "reject"


class ShardIngestWorker:
    """Bounded ingest queue + batch flusher for one shard.

    Args:
        shard_id: Owning shard (labels counters and checkpoints).
        database: The shard's TSDB.
        capacity: Queue bound; offers beyond it trigger the policy.
        policy: Backpressure policy (see module docstring).
        batch_size: Samples per TSDB write batch.
        metrics: Optional shared metrics registry.
        fault_injector: Optional :class:`~repro.faults.FaultInjector`
            consulted at the ``ingest.flush`` site before each batch
            write (chaos drills; ``None`` in production).
        admission: Optional
            :class:`~repro.quality.admission.AdmissionController` run on
            every offer (``None`` disables data-quality admission).

    Thread-safe: producers may ``offer()`` concurrently with ``flush()``.
    """

    def __init__(
        self,
        shard_id: object,
        database: TimeSeriesDatabase,
        capacity: int = 1024,
        policy: BackpressurePolicy = BackpressurePolicy.DROP_OLDEST,
        batch_size: int = 256,
        metrics: Optional[Any] = None,
        fault_injector: Optional[Any] = None,
        admission: Optional[Any] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.shard_id = shard_id
        self.database = database
        self.capacity = capacity
        self.policy = BackpressurePolicy(policy)
        self.batch_size = batch_size
        self.metrics = metrics
        self.fault_injector = fault_injector
        self.admission = admission
        self._queue: Deque[Sample] = deque()
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        # While an advance is in flight the queue's contents belong to a
        # worker-process blob and the live database is about to be
        # replaced: flushing would write into state that gets discarded.
        self._advancing = False
        # Plain-int counters: picklable, cheap, checkpointed with the shard.
        self.offered = 0
        self.accepted = 0
        self.flushed = 0
        self.dropped_oldest = 0
        self.rejected = 0
        self.blocking_flushes = 0
        self.flushes = 0
        self.flush_failures = 0

    # -- producer side --------------------------------------------------

    def offer(self, sample: Sample) -> bool:
        """Enqueue one sample, applying backpressure when full.

        With an admission controller attached the sample is validated
        first: quarantined points return ``False`` without touching the
        queue, out-of-order points are held for reordering (``True`` —
        they are accepted, just not enqueued yet), and repaired points
        continue in their repaired form.

        Returns:
            ``True`` when the sample was buffered (or held for
            reordering); ``False`` when it was quarantined, or under
            the ``REJECT`` policy with a full queue.
        """
        with self._lock:
            self.offered += 1
            # Backpressure resolves *before* admission: a sample refused
            # (or evicted for) by a full queue never touches validator
            # state, so a later retry of the same point is not
            # misclassified as a duplicate — and refused samples skip
            # the admission work entirely.
            if len(self._queue) >= self.capacity:
                if self.policy is BackpressurePolicy.REJECT:
                    self.rejected += 1
                    self._inc("ingest.rejected")
                    return False
                if self.policy is BackpressurePolicy.DROP_OLDEST:
                    self._queue.popleft()
                    self.dropped_oldest += 1
                    self._inc("ingest.dropped_oldest")
                else:  # BLOCK: caller-runs — flush a batch to make room.
                    self.blocking_flushes += 1
                    self._inc("ingest.blocking_flushes")
                    # During an advance the database is stale: wait for
                    # the swap (or for the drain that accompanies it) to
                    # make room instead of flushing into discarded state.
                    while self._advancing and len(self._queue) >= self.capacity:
                        self._cond.wait()
                    if len(self._queue) >= self.capacity:
                        self._flush_batch()
            if self.admission is not None:
                verdict, admitted = self.admission.admit(sample)
                if verdict != ADMIT:
                    if verdict == DROP:
                        return False
                    # HELD: buffered in the controller; if holding this
                    # point overflowed a reorder buffer, the released
                    # batch backfills at the queue front now.
                    if self.admission.ready:
                        self._release_stragglers(self.admission.take_ready())
                    return True
                sample = admitted
            self._queue.append(sample)
            self.accepted += 1
            self._inc("ingest.accepted")
            return True

    def offer_many(self, samples: Iterable[Sample]) -> int:
        """Offer each sample; returns how many were accepted."""
        return sum(1 for sample in samples if self.offer(sample))

    def _release_stragglers(self, samples: List[Sample]) -> None:
        """Move reordered samples into the queue front (lock held).

        Released stragglers predate everything buffered, so they go to
        the *front* — a later flush writes them in timestamp order and
        the TSDB merges them in one backfill pass.  They were already
        admitted, so they bypass the capacity policy (the transient
        overshoot is bounded by the admission reorder window); they
        count as accepted here, on actual enqueue.
        """
        if not samples:
            return
        self._queue.extendleft(reversed(samples))
        self.accepted += len(samples)
        if self.metrics is not None:
            self.metrics.inc("ingest.accepted", len(samples))

    @property
    def pending(self) -> int:
        """Samples buffered but not yet flushed."""
        return len(self._queue)

    # -- flush side ------------------------------------------------------

    def flush(self, release_stragglers: bool = True) -> int:
        """Drain the whole queue into the TSDB in ``batch_size`` batches.

        Args:
            release_stragglers: Also release every sample held in the
                admission reordering buffer first, so detection sees a
                fully backfilled TSDB.  Background flushers pass
                ``False`` — they only bound queue depth, and holding
                stragglers longer lets the buffer absorb more
                out-of-order arrivals per backfill merge.

        Returns:
            Number of samples written.
        """
        written = 0
        with self._lock:
            if self._advancing:
                # The queue's contents (and the database) are owned by an
                # in-flight advance; anything buffered here is carried
                # over when the advanced state is installed.
                return 0
            if release_stragglers and self.admission is not None:
                self._release_stragglers(self.admission.drain_pending())
            while self._queue:
                written += self._flush_batch()
        return written

    def _flush_batch(self) -> int:
        """Write up to one batch (caller holds the lock).

        A failed write must not lose the batch: the popped samples are
        put back at the *front* of the queue (they predate everything
        still buffered) before the error propagates, so a retried flush
        writes the same samples in the same order.
        """
        if not self._queue:
            return 0
        batch = [
            self._queue.popleft()
            for _ in range(min(self.batch_size, len(self._queue)))
        ]
        started = time.perf_counter()
        try:
            if self.fault_injector is not None:
                self.fault_injector.maybe_raise("ingest.flush", self._shard_index())
            written = self.database.write_batch(
                (s.name, s.timestamp, s.value, s.tags) for s in batch
            )
        except Exception:
            self._queue.extendleft(reversed(batch))
            self.flush_failures += 1
            self._inc("ingest.flush_failures")
            raise
        self.flushed += written
        self.flushes += 1
        if self.metrics is not None:
            self.metrics.inc("ingest.flushed", written)
            self.metrics.observe("ingest.flush_seconds", time.perf_counter() - started)
        return written

    # -- state-swap support (parallel executor) --------------------------
    #
    # The parallel path never replaces this object: producers and
    # background flushers hold references to it, and swapping it out
    # would leave a window where offers land in an abandoned queue.
    # Instead the service brackets each advance with begin_advance() /
    # complete_advance() (or abort_advance() on failure), and the
    # advanced database plus flush-side counter deltas are transplanted
    # into this live worker under its own lock.

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Hold the queue lock for the duration of the block.

        The parallel executor serializes shard state from the service
        thread while producers may still be offering; pausing makes the
        pickled snapshot internally consistent (offers block briefly,
        then land in the live queue and are carried over when the
        advanced state is installed).
        """
        with self._lock:
            yield

    def begin_advance(self) -> Dict[str, int]:
        """Enter advancing mode: suspend flushes until the swap resolves.

        While advancing, :meth:`flush` is a no-op and BLOCK-policy
        offers wait instead of flushing — both would otherwise write
        into a database that is discarded when the advanced state lands.
        Offer-side counters keep running on this object (it stays
        authoritative for them throughout).

        Returns:
            The flush-side counter baseline, to be passed back to
            :meth:`complete_advance` so the deltas the worker process
            accrues (it flushes the snapshot's queue) can be merged.
        """
        with self._lock:
            # Held stragglers belong with the queue they are destined
            # for: release them now so the snapshot blob carries them
            # (the worker-process copy then does no admission work and
            # all admission counters stay parent-side).
            if self.admission is not None:
                self._release_stragglers(self.admission.drain_pending())
            self._advancing = True
            return {
                "flushed": self.flushed,
                "flushes": self.flushes,
                "blocking_flushes": self.blocking_flushes,
            }

    def complete_advance(
        self,
        advanced: "ShardIngestWorker",
        database: TimeSeriesDatabase,
        baseline: Dict[str, int],
    ) -> None:
        """Adopt an advanced worker's database and flush-counter deltas.

        Args:
            advanced: The worker copy that ran in the worker process.
            database: The advanced database this worker flushes into
                from now on.
            baseline: Flush counters captured by :meth:`begin_advance`;
                ``advanced``'s counters minus the baseline are the
                flushes the worker process performed on our behalf.
        """
        with self._lock:
            self.database = database
            self.flushed += advanced.flushed - baseline["flushed"]
            self.flushes += advanced.flushes - baseline["flushes"]
            self.blocking_flushes += (
                advanced.blocking_flushes - baseline["blocking_flushes"]
            )
            if advanced._queue:  # pragma: no cover - workers flush fully
                self._queue.extendleft(reversed(advanced._queue))
            self._advancing = False
            self._cond.notify_all()

    def abort_advance(self, restore: Iterable[Sample] = ()) -> None:
        """Leave advancing mode without installing new state.

        Args:
            restore: Samples that were drained into the (now failed)
                snapshot blob; they are put back at the *front* of the
                queue — they predate anything offered since.
        """
        with self._lock:
            restored = list(restore)
            if restored:
                self._queue.extendleft(reversed(restored))
            self._advancing = False
            self._cond.notify_all()

    def drain_pending(self) -> List[Sample]:
        """Remove and return everything buffered, without flushing it.

        Used when snapshotting for a worker process: ownership of the
        buffered samples transfers to the pickled blob (whose copy the
        worker flushes), so they must leave the live queue to avoid
        double ingestion.  Waiting BLOCK-policy producers are notified —
        the queue just gained room.
        """
        with self._lock:
            pending = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
            return pending

    # -- introspection / pickling ----------------------------------------

    def counters(self) -> Dict[str, int]:
        """Backpressure, flush, and admission counters as a plain dict."""
        counters = {
            "offered": self.offered,
            "accepted": self.accepted,
            "flushed": self.flushed,
            "pending": self.pending,
            "dropped_oldest": self.dropped_oldest,
            "rejected": self.rejected,
            "blocking_flushes": self.blocking_flushes,
            "flushes": self.flushes,
            "flush_failures": self.flush_failures,
        }
        if self.admission is not None:
            for key, value in self.admission.counters().items():
                counters[f"quality_{key}"] = value
        return counters

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def _shard_index(self) -> Optional[int]:
        return self.shard_id if isinstance(self.shard_id, int) else None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        state.pop("_cond", None)
        # The advancing flag describes the *live* object: the pickled
        # copy is exactly what the worker process must flush.
        state["_advancing"] = False
        # The shared registry and injector are restored by the service,
        # not the pickle (the injector holds a lock and must stay
        # parent-only anyway — workers never decide faults).
        state["metrics"] = None
        state["fault_injector"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        # Defaults first: blobs pickled by older builds predate these.
        self.flush_failures = 0
        self.fault_injector = None
        self.admission = None
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._advancing = False
