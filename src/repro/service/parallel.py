"""Multi-process shard execution.

The paper's deployment scans different slices of the series space on a
serverless fleet (§5.1); one Python process with thread-level scan
parallelism hits the GIL long before it hits the hardware.  This module
fans per-shard ``DetectionScheduler.advance_to`` slices out to worker
*processes*:

1. the service serializes each shard's state (TSDB + ingest queue +
   scheduler with its detector/dedup/incremental state) under the
   shard's queue lock — shard state is already picklable because it is
   exactly what checkpoints persist;
2. each worker process deserializes one shard, wires a fresh process-
   local metrics registry, flushes the queued samples, advances the
   scheduler to the target time, and ships the advanced state, the scan
   outcomes, and a metrics snapshot back;
3. the parent installs the advanced states and merges outcomes **in
   ascending shard-id order** — the same order the serial path iterates
   shards — so ledger admission, funnel accumulation, and sink delivery
   are byte-identical to single-process execution.

The merge barrier is the loop over :meth:`ParallelShardExecutor.map_shards`
results: report-level side effects happen only in the parent, after all
futures resolve, which is what makes parallel and serial runs produce
identical report sets for identical inputs.

Shards never share mutable state (each owns its TSDB and detectors), so
the only cross-shard coupling is that deterministic merge in the parent.

Failure paths are first-class: a crashed worker (``BrokenProcessPool``)
or a shard advance that blows its deadline no longer poisons the cached
pool or fails the whole ``advance_to``.  The executor retries failed
shards with exponential backoff on a freshly created pool, and — once
retries are exhausted — advances the failed shard *in-process* from the
same snapshot blob.  Because a shard advance is a pure function of
``(blob, target)``, retried and fallback advances produce the same
outcomes a healthy worker would, so the determinism contract survives
every recovery path.  An optional
:class:`~repro.faults.FaultInjector` hooks the submit path: the parent
decides per-shard fault directives (crash / hang) that the worker
executes, which is how the chaos suite drives these recovery paths
deterministically.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.logging import get_logger
from repro.obs.spans import RunTrace, TraceStore
from repro.runtime.scheduler import ScanOutcome
from repro.service.metrics import MetricsRegistry

__all__ = ["ShardAdvanceResult", "ParallelShardExecutor"]

_log = get_logger("repro.service.parallel")


@dataclass
class ShardAdvanceResult:
    """What one worker process ships back for one shard.

    Attributes:
        shard_id: The shard that was advanced.
        state: The advanced shard-state dict (same shape as
            ``_Shard.state()`` / the checkpoint blob).
        outcomes: Scan outcomes, in the scheduler's deterministic order.
        metrics: Snapshot of the worker-local metrics registry (scan
            latencies, pipeline counters, cache hits) for the parent to
            merge.
        traces: Funnel run traces the worker's pipelines recorded (a
            :class:`~repro.obs.spans.TraceStore` pickles to an empty
            shell, so the runs travel explicitly here and the parent
            folds them into its live store).
        elapsed: Wall-clock seconds the worker spent on this shard.
        retries: How many times this shard's advance was retried before
            this result was produced (0 on the happy path).
        fallback: ``"in_process"`` when the result came from the
            parent-process fallback after retries were exhausted,
            ``None`` when a pool worker produced it.
    """

    shard_id: int
    state: dict
    outcomes: List[ScanOutcome]
    metrics: dict
    elapsed: float
    traces: List[RunTrace] = field(default_factory=list)
    retries: int = 0
    fallback: Optional[str] = None


def _advance_shard(
    shard_id: int,
    blob: bytes,
    target: float,
    fault: Optional[Tuple[str, float]] = None,
) -> ShardAdvanceResult:
    """Worker entry point: advance one pickled shard to ``target``.

    Module-level so every multiprocessing start method can import it.
    ``fault`` is an injected directive decided by the parent's
    :class:`~repro.faults.FaultInjector` — ``("crash", _)`` kills this
    process hard (surfacing as ``BrokenProcessPool``), ``("hang", s)``
    sleeps ``s`` seconds before working (tripping the caller's
    per-shard deadline).  The in-process fallback always passes
    ``None``, which is what guarantees chaos runs make progress.
    """
    if fault is not None:
        kind, value = fault
        if kind == "crash":
            os._exit(13)
        elif kind == "hang":
            time.sleep(value)
    state = pickle.loads(blob)
    registry = MetricsRegistry()
    tracer = TraceStore()
    worker = state["worker"]
    scheduler = state["scheduler"]
    worker.metrics = registry
    scheduler.wire_metrics(registry)
    scheduler.wire_tracer(tracer)
    started = time.perf_counter()
    worker.flush()
    outcomes = scheduler.advance_to(target)
    elapsed = time.perf_counter() - started
    state["scans"] = state.get("scans", 0) + len(outcomes)
    # Detach the worker-local registry and trace store before the result
    # pickles back: the parent owns the authoritative ones and merges the
    # snapshot / recorded runs explicitly.
    worker.metrics = None
    scheduler.wire_metrics(None)
    scheduler.wire_tracer(None)
    return ShardAdvanceResult(
        shard_id=shard_id,
        state=state,
        outcomes=outcomes,
        metrics=registry.snapshot(),
        elapsed=elapsed,
        traces=tracer.runs(),
    )


class ParallelShardExecutor:
    """Fans shard advances out to a lazily created process pool.

    Args:
        workers: Worker process count (must be >= 1).  With one worker
            the service skips this executor entirely and runs the
            in-thread path; the executor still handles ``workers=1``
            correctly for direct use.
        mp_context: Optional :mod:`multiprocessing` context (or start
            method name) — defaults to the platform default, which keeps
            the executor working under both fork and spawn.
        retries: How many times a failed shard advance is retried on a
            (possibly recreated) pool before falling back in-process.
        backoff: Base delay of the exponential backoff between retry
            rounds (``backoff * 2**round`` seconds).
        deadline: Per-shard advance deadline in seconds; ``None``
            disables the timeout.  A shard that blows the deadline is
            treated as failed (the hung worker is abandoned with the
            recycled pool) and retried.
        injector: Optional :class:`~repro.faults.FaultInjector`; the
            submit path asks it for per-shard crash/hang directives.
        metrics: Optional registry-like object receiving the
            ``advance.retries`` / ``advance.fallbacks`` /
            ``advance.pool_recreations`` counters.

    Example::

        executor = ParallelShardExecutor(workers=4)
        results = executor.map_shards({0: blob0, 1: blob1}, target=3600.0)
        executor.close()
    """

    def __init__(
        self,
        workers: int,
        mp_context: Optional[Any] = None,
        retries: int = 2,
        backoff: float = 0.05,
        deadline: Optional[float] = None,
        injector: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.deadline = deadline
        self.injector = injector
        self.metrics = metrics
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            kwargs: Dict[str, Any] = {}
            if self._mp_context is not None:
                import multiprocessing

                context = self._mp_context
                if isinstance(context, str):
                    context = multiprocessing.get_context(context)
                kwargs["mp_context"] = context
            self._pool = ProcessPoolExecutor(max_workers=self.workers, **kwargs)
        return self._pool

    def _recycle_pool(self) -> None:
        """Throw the pool away (broken, or wedged on a hung worker).

        ``wait=False`` abandons any still-running worker: its eventual
        result is discarded, which is safe because workers only ever
        mutate their own unpickled copies of shard state.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._inc("advance.pool_recreations")

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def map_shards(
        self, blobs: Dict[int, bytes], target: float
    ) -> List[ShardAdvanceResult]:
        """Advance every shard blob to ``target``; results sorted by id.

        The sort is the determinism contract: callers fold results in
        ascending shard-id order, matching the serial path's iteration
        order exactly.

        Failure handling: shards whose worker crashed, raised, or blew
        the deadline are retried (with exponential backoff, on a fresh
        pool when the old one broke) up to ``retries`` times, then
        advanced in-process from the same snapshot.  Every shard in
        ``blobs`` is therefore represented in the returned list — a
        genuine deterministic error (a bug, not a crash) still
        propagates, from the in-process attempt.
        """
        results: Dict[int, ShardAdvanceResult] = {}
        retry_counts: Dict[int, int] = {shard_id: 0 for shard_id in blobs}
        remaining: Dict[int, bytes] = dict(sorted(blobs.items()))
        for attempt in range(self.retries + 1):
            if not remaining:
                break
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
                self._inc("advance.retries", len(remaining))
                for shard_id in remaining:
                    retry_counts[shard_id] += 1
            failed = self._attempt(remaining, target, results)
            remaining = {shard_id: blobs[shard_id] for shard_id in sorted(failed)}
        for shard_id, blob in remaining.items():
            # Retries exhausted: advance in the parent from the same
            # snapshot.  No fault directive is ever passed here, so a
            # chaos plan cannot starve a shard forever.
            _log.warning(
                "shard advance falling back in-process",
                shard=shard_id,
                retries=retry_counts[shard_id],
            )
            result = _advance_shard(shard_id, blob, target)
            result.fallback = "in_process"
            self._inc("advance.fallbacks")
            results[shard_id] = result
        for shard_id, result in results.items():
            result.retries = retry_counts.get(shard_id, 0)
        return [results[shard_id] for shard_id in sorted(results)]

    def _attempt(
        self,
        shards: Dict[int, bytes],
        target: float,
        results: Dict[int, ShardAdvanceResult],
    ) -> List[int]:
        """Run one submission round; returns the shard ids that failed."""
        pool = self._ensure_pool()
        futures: Dict[int, Future] = {}
        failed: List[int] = []
        broken = False
        timed_out = False
        for shard_id, blob in shards.items():
            fault = (
                self.injector.worker_directive(shard_id)
                if self.injector is not None
                else None
            )
            try:
                futures[shard_id] = pool.submit(
                    _advance_shard, shard_id, blob, target, fault
                )
            except BrokenProcessPool:
                broken = True
                failed.append(shard_id)
        for shard_id, future in futures.items():
            try:
                results[shard_id] = future.result(timeout=self.deadline)
            except BrokenProcessPool as error:
                broken = True
                failed.append(shard_id)
                _log.warning(
                    "shard advance worker crashed", shard=shard_id, error=str(error)
                )
            except FutureTimeout:
                timed_out = True
                failed.append(shard_id)
                self._inc("advance.deadline_exceeded")
                _log.warning(
                    "shard advance blew its deadline",
                    shard=shard_id,
                    deadline=self.deadline,
                )
            except Exception as error:
                failed.append(shard_id)
                _log.warning(
                    "shard advance raised", shard=shard_id, error=str(error)
                )
        if broken or timed_out:
            self._recycle_pool()
        return failed

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
