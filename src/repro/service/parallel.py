"""Multi-process shard execution.

The paper's deployment scans different slices of the series space on a
serverless fleet (§5.1); one Python process with thread-level scan
parallelism hits the GIL long before it hits the hardware.  This module
fans per-shard ``DetectionScheduler.advance_to`` slices out to worker
*processes*:

1. the service serializes each shard's state (TSDB + ingest queue +
   scheduler with its detector/dedup/incremental state) under the
   shard's queue lock — shard state is already picklable because it is
   exactly what checkpoints persist;
2. each worker process deserializes one shard, wires a fresh process-
   local metrics registry, flushes the queued samples, advances the
   scheduler to the target time, and ships the advanced state, the scan
   outcomes, and a metrics snapshot back;
3. the parent installs the advanced states and merges outcomes **in
   ascending shard-id order** — the same order the serial path iterates
   shards — so ledger admission, funnel accumulation, and sink delivery
   are byte-identical to single-process execution.

The merge barrier is the loop over :meth:`ParallelShardExecutor.map_shards`
results: report-level side effects happen only in the parent, after all
futures resolve, which is what makes parallel and serial runs produce
identical report sets for identical inputs.

Shards never share mutable state (each owns its TSDB and detectors), so
the only cross-shard coupling is that deterministic merge in the parent.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.spans import RunTrace, TraceStore
from repro.runtime.scheduler import ScanOutcome
from repro.service.metrics import MetricsRegistry

__all__ = ["ShardAdvanceResult", "ParallelShardExecutor"]


@dataclass
class ShardAdvanceResult:
    """What one worker process ships back for one shard.

    Attributes:
        shard_id: The shard that was advanced.
        state: The advanced shard-state dict (same shape as
            ``_Shard.state()`` / the checkpoint blob).
        outcomes: Scan outcomes, in the scheduler's deterministic order.
        metrics: Snapshot of the worker-local metrics registry (scan
            latencies, pipeline counters, cache hits) for the parent to
            merge.
        traces: Funnel run traces the worker's pipelines recorded (a
            :class:`~repro.obs.spans.TraceStore` pickles to an empty
            shell, so the runs travel explicitly here and the parent
            folds them into its live store).
        elapsed: Wall-clock seconds the worker spent on this shard.
    """

    shard_id: int
    state: dict
    outcomes: List[ScanOutcome]
    metrics: dict
    elapsed: float
    traces: List[RunTrace] = field(default_factory=list)


def _advance_shard(shard_id: int, blob: bytes, target: float) -> ShardAdvanceResult:
    """Worker entry point: advance one pickled shard to ``target``.

    Module-level so every multiprocessing start method can import it.
    """
    state = pickle.loads(blob)
    registry = MetricsRegistry()
    tracer = TraceStore()
    worker = state["worker"]
    scheduler = state["scheduler"]
    worker.metrics = registry
    scheduler.wire_metrics(registry)
    scheduler.wire_tracer(tracer)
    started = time.perf_counter()
    worker.flush()
    outcomes = scheduler.advance_to(target)
    elapsed = time.perf_counter() - started
    state["scans"] = state.get("scans", 0) + len(outcomes)
    # Detach the worker-local registry and trace store before the result
    # pickles back: the parent owns the authoritative ones and merges the
    # snapshot / recorded runs explicitly.
    worker.metrics = None
    scheduler.wire_metrics(None)
    scheduler.wire_tracer(None)
    return ShardAdvanceResult(
        shard_id=shard_id,
        state=state,
        outcomes=outcomes,
        metrics=registry.snapshot(),
        elapsed=elapsed,
        traces=tracer.runs(),
    )


class ParallelShardExecutor:
    """Fans shard advances out to a lazily created process pool.

    Args:
        workers: Worker process count (must be >= 1).  With one worker
            the service skips this executor entirely and runs the
            in-thread path; the executor still handles ``workers=1``
            correctly for direct use.
        mp_context: Optional :mod:`multiprocessing` context (or start
            method name) — defaults to the platform default, which keeps
            the executor working under both fork and spawn.

    Example::

        executor = ParallelShardExecutor(workers=4)
        results = executor.map_shards({0: blob0, 1: blob1}, target=3600.0)
        executor.close()
    """

    def __init__(self, workers: int, mp_context: Optional[Any] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            kwargs: Dict[str, Any] = {}
            if self._mp_context is not None:
                import multiprocessing

                context = self._mp_context
                if isinstance(context, str):
                    context = multiprocessing.get_context(context)
                kwargs["mp_context"] = context
            self._pool = ProcessPoolExecutor(max_workers=self.workers, **kwargs)
        return self._pool

    def map_shards(
        self, blobs: Dict[int, bytes], target: float
    ) -> List[ShardAdvanceResult]:
        """Advance every shard blob to ``target``; results sorted by id.

        The sort is the determinism contract: callers fold results in
        ascending shard-id order, matching the serial path's iteration
        order exactly.
        """
        pool = self._ensure_pool()
        futures: Sequence[Future] = [
            pool.submit(_advance_shard, shard_id, blob, target)
            for shard_id, blob in sorted(blobs.items())
        ]
        results = [future.result() for future in futures]
        return sorted(results, key=lambda result: result.shard_id)

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
