"""The sharded streaming detection service.

Composes the pieces of this package into the paper's deployment shape
(§5.1: a serverless fleet scanning different series in parallel),
scaled down to one process:

- a :class:`~repro.service.router.ConsistentHashRouter` maps each
  sample's series name to a shard;
- every shard owns its own
  :class:`~repro.tsdb.database.TimeSeriesDatabase`, a
  :class:`~repro.service.ingest.ShardIngestWorker` (bounded queue +
  backpressure + batch flush), and a
  :class:`~repro.runtime.scheduler.DetectionScheduler` whose monitors
  carry the per-shard FBDetect dedup state;
- :meth:`StreamingDetectionService.advance_to` flushes queues, runs due
  scans, filters re-alerts through a durable reported-ledger, and
  delivers :class:`~repro.reporting.report.IncidentReport`\\ s to sinks;
- :meth:`StreamingDetectionService.checkpoint` /
  :meth:`StreamingDetectionService.restore` persist the whole thing so
  a restarted service resumes without re-alerting on regressions it
  already reported — and without losing queued samples.

Deduplication scope: SOM/pairwise dedup runs *within* a shard (each
shard has its own detectors).  Cross-shard correlation is a later PR;
series of one service hash to one shard only by key-prefix accident, so
the router accepts a custom ``routing_key`` to co-locate related series
when cross-series dedup matters.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import DetectionConfig
from repro.core.pipeline import FunnelCounters
from repro.faults import FaultInjector
from repro.faults.plan import FaultKind
from repro.core.types import Regression
from repro.detectors import (
    DetectorSpec,
    ShadowScorer,
    build_detector,
    merge_snapshot_rows,
)
from repro.quality import AdmissionController, QualityConfig, QualityGate
from repro.obs.logging import correlation_id, get_logger, log_context
from repro.obs.spans import EventLog, FunnelTrace, TraceStore
from repro.reporting.report import IncidentReport, build_report
from repro.runtime.scheduler import DetectionScheduler, ScanOutcome
from repro.runtime.sinks import IncidentSink
from repro.service.checkpoint import CheckpointManager
from repro.service.ingest import BackpressurePolicy, Sample, ShardIngestWorker
from repro.service.metrics import MetricsRegistry
from repro.service.parallel import ParallelShardExecutor
from repro.service.router import ConsistentHashRouter
from repro.tsdb.database import TimeSeriesDatabase

__all__ = ["ShardStats", "ServiceStats", "StreamingDetectionService"]

_log = get_logger("repro.service")


@dataclass(frozen=True)
class ShardStats:
    """One shard's health snapshot."""

    shard_id: int
    series: int
    pending: int
    counters: Dict[str, int]
    scans: int


@dataclass(frozen=True)
class ServiceStats:
    """Whole-service health snapshot (returned by :meth:`stats`).

    Attributes:
        clock: Last advanced detection time.
        n_shards: Shard count.
        offered/accepted/flushed/dropped/rejected: Ingest totals across
            shards.
        scans: Detection scans executed.
        reported: Incident reports delivered to sinks.
        suppressed_realerts: Reports suppressed by the reported-ledger
            (non-zero only when replayed data re-surfaces a regression
            the service already alerted on, e.g. after a restore).
        shards: Per-shard breakdowns.
        metrics: Full self-metrics snapshot (counters, gauges, latency
            histograms).
    """

    clock: float
    n_shards: int
    offered: int
    accepted: int
    flushed: int
    dropped: int
    rejected: int
    scans: int
    reported: int
    suppressed_realerts: int
    shards: List[ShardStats]
    metrics: dict

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"ServiceStats @ t={self.clock:g}",
            f"  shards={self.n_shards} scans={self.scans} "
            f"reported={self.reported} suppressed_realerts={self.suppressed_realerts}",
            f"  ingest: offered={self.offered} accepted={self.accepted} "
            f"flushed={self.flushed} dropped={self.dropped} rejected={self.rejected}",
        ]
        for shard in self.shards:
            counters = shard.counters
            lines.append(
                f"  shard {shard.shard_id}: series={shard.series} "
                f"pending={shard.pending} accepted={counters['accepted']} "
                f"flushed={counters['flushed']} dropped={counters['dropped_oldest']} "
                f"rejected={counters['rejected']} scans={shard.scans}"
            )
        histograms = self.metrics.get("histograms", {})
        scan = histograms.get("scheduler.scan_seconds")
        if scan and scan["count"]:
            lines.append(
                f"  scan latency: n={scan['count']} "
                f"mean={scan['sum'] / scan['count'] * 1e3:.2f}ms"
            )
        return "\n".join(lines)


class _Shard:
    """One shard: its TSDB, ingest worker, scheduler, and counters."""

    def __init__(
        self,
        shard_id: int,
        queue_capacity: int,
        backpressure: BackpressurePolicy,
        batch_size: int,
        max_workers: int,
        retention: float,
        metrics: MetricsRegistry,
        fault_injector: Optional[FaultInjector] = None,
        quality: Optional[QualityConfig] = None,
    ) -> None:
        self.shard_id = shard_id
        self.database = TimeSeriesDatabase()
        # Kept so a restore from a pre-quality checkpoint (whose worker
        # blob has no admission controller) can be given a fresh one.
        self._quality_config = quality
        self.worker = ShardIngestWorker(
            shard_id,
            self.database,
            capacity=queue_capacity,
            policy=backpressure,
            batch_size=batch_size,
            metrics=metrics,
            fault_injector=fault_injector,
            admission=(
                AdmissionController(quality, shard_id=shard_id, metrics=metrics)
                if quality is not None
                else None
            ),
        )
        self.scheduler = DetectionScheduler(
            self.database,
            max_workers=max_workers,
            retention=retention,
            keep_outcomes=False,
            metrics=metrics,
        )
        self.scans = 0
        self._advance_baseline: Dict[str, int] = {}
        self._advance_drained: List[Sample] = []

    def state(self) -> dict:
        """Checkpointable state (pickled as one blob, shared refs intact)."""
        return {
            "database": self.database,
            "worker": self.worker,
            "scheduler": self.scheduler,
            "scans": self.scans,
        }

    def load_state(
        self,
        state: dict,
        metrics: MetricsRegistry,
        drop_derived: bool = False,
        tracer: Optional[TraceStore] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        """Install (un)pickled shard state (checkpoint-restore path).

        Only used when rebuilding a service from a checkpoint, before
        any producer or flusher thread holds a reference to the shard's
        worker — the parallel advance path never replaces live objects
        (see :meth:`begin_advance` / :meth:`complete_advance`).

        Args:
            state: A :meth:`state`-shaped dict.
            metrics: The process-local registry to rewire (dropped on
                pickle).
            drop_derived: Invalidate derived caches (incremental-scan
                anchors).  True on checkpoint *restore* — a trust
                boundary where stale anchors must never suppress a
                re-scan.
            tracer: The process-local trace store to rewire (trace
                buffers are dropped on pickle, like metrics).
        """
        self.database = state["database"]
        self.worker = state["worker"]
        self.scheduler = state["scheduler"]
        self.scans = state.get("scans", 0)
        # Rewire process-local observability state (dropped on pickle).
        self.worker.metrics = metrics
        self.worker.fault_injector = fault_injector
        if self.worker.admission is not None:
            self.worker.admission.metrics = metrics
        elif self._quality_config is not None:
            # Pre-quality checkpoint blob: admission starts fresh (there
            # is no quarantine history to carry).
            self.worker.admission = AdmissionController(
                self._quality_config, shard_id=self.shard_id, metrics=metrics
            )
        self.scheduler.wire_metrics(metrics)
        self.scheduler.wire_tracer(tracer)
        if drop_derived:
            self.scheduler.invalidate_incremental()

    def begin_advance(self) -> bytes:
        """Snapshot this shard for a worker process and suspend flushes.

        Serializes the shard state under the worker's queue lock;
        ownership of queued samples transfers to the blob (the worker
        process flushes the blob's copy), so the live queue is cleared
        after the dump — the drained samples are kept aside so
        :meth:`abort_advance` can put them back if the advance fails.

        Until :meth:`complete_advance` or :meth:`abort_advance` runs,
        the live worker stays in advancing mode: background or
        BLOCK-policy flushes are held off so no sample is ever written
        into the stale database this snapshot supersedes.  Offers keep
        landing in the live queue and are carried across the swap.
        """
        with self.worker.paused():
            self._advance_baseline = self.worker.begin_advance()
            blob = pickle.dumps(self.state(), protocol=pickle.HIGHEST_PROTOCOL)
            self._advance_drained = self.worker.drain_pending()
            return blob

    def complete_advance(
        self,
        state: dict,
        metrics: MetricsRegistry,
        tracer: Optional[TraceStore] = None,
    ) -> None:
        """Install a worker process's advanced state into the live shard.

        The live :class:`~repro.service.ingest.ShardIngestWorker` object
        is kept (producers and flusher threads hold references to it);
        it adopts the advanced database and the flush-side counter
        deltas the worker process accrued, then resumes flushing.
        """
        self.database = state["database"]
        self.scheduler = state["scheduler"]
        self.scheduler.wire_metrics(metrics)
        self.scheduler.wire_tracer(tracer)
        self.scans = state.get("scans", self.scans)
        self.worker.complete_advance(
            state["worker"], self.database, self._advance_baseline
        )
        self._advance_drained = []

    def abort_advance(self) -> None:
        """Roll back a failed advance: restore drained samples, resume."""
        self.worker.abort_advance(self._advance_drained)
        self._advance_drained = []


class StreamingDetectionService:
    """Sharded streaming ingestion + detection with self-metrics.

    Args:
        n_shards: Number of shards (each with its own TSDB, queue, and
            detector state).
        sinks: Incident sinks for delivered reports.
        queue_capacity: Per-shard ingest queue bound.
        backpressure: Policy when a shard queue is full.
        batch_size: Samples per TSDB flush batch.
        max_workers_per_shard: Parallel scan threads per shard.
        workers: Worker *processes* for shard advances.  With ``workers
            <= 1`` detection runs in-thread (the historical path); with
            more, :meth:`advance_to` pickles each shard out to a
            :class:`~repro.service.parallel.ParallelShardExecutor`,
            advances shards truly in parallel, and merges the results
            deterministically (ascending shard id — identical report
            order to the serial path).
        retention: Per-shard TSDB retention (seconds; 0 disables).
        replicas: Virtual nodes per shard on the hash ring.
        routing_key: Maps a sample to its routing key (default: the
            series name).  Use a coarser key (e.g. the service tag) to
            co-locate series whose cross-series dedup matters.
        realert_tolerance: Window (seconds of change time) within which
            a regression on the same metric counts as already reported.
        trace_capacity: Ring-buffer size (pipeline runs) of the funnel
            trace store behind ``/status`` and :meth:`funnel_trace`.
        fault_injector: Optional :class:`~repro.faults.FaultInjector`
            threaded through the parallel executor, ingest workers,
            background flushers, checkpoint writer, and the service's
            wall clock — ``None`` (production) makes every hook a no-op.
        advance_retries: Retries per failed shard advance before the
            in-process fallback (see
            :class:`~repro.service.parallel.ParallelShardExecutor`).
        advance_backoff: Base seconds of the exponential backoff between
            advance retry rounds.
        advance_deadline: Per-shard advance deadline in seconds
            (``None`` disables; a blown deadline counts as a failure and
            retries).
        checkpoint_generations: Checkpoint generations retained on disk;
            restore falls back to the newest intact one.
        quality: Data-quality admission configuration (see
            :class:`~repro.quality.admission.QualityConfig`).  On by
            default: every shard runs per-series validators on ingest
            (NaN/Inf quarantine, negative-value repair, counter-reset
            rebasing, duplicate handling, out-of-order reordering) and
            monitors default to a gap-aware
            :class:`~repro.quality.gaps.QualityGate`.  Pass ``None`` to
            disable the whole layer (raw writes, gap-blind scans).

    Example::

        service = StreamingDetectionService(n_shards=4, sinks=[sink])
        service.register_monitor("gcpu", config, series_filter={"metric": "gcpu"})
        for sample in stream:
            service.ingest(sample.name, sample.timestamp, sample.value, sample.tags)
        service.advance_to(stream_end)
        print(service.stats().render())
    """

    def __init__(
        self,
        n_shards: int = 4,
        sinks: Sequence[IncidentSink] = (),
        queue_capacity: int = 1024,
        backpressure: BackpressurePolicy = BackpressurePolicy.DROP_OLDEST,
        batch_size: int = 256,
        max_workers_per_shard: int = 2,
        workers: int = 1,
        retention: float = 0.0,
        replicas: int = 64,
        routing_key: Optional[Callable[[Sample], str]] = None,
        realert_tolerance: float = 3600.0,
        metrics: Optional[MetricsRegistry] = None,
        trace_capacity: int = 256,
        fault_injector: Optional[FaultInjector] = None,
        advance_retries: int = 2,
        advance_backoff: float = 0.05,
        advance_deadline: Optional[float] = None,
        checkpoint_generations: int = 3,
        quality: Optional[QualityConfig] = QualityConfig(),
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.n_shards = n_shards
        self.workers = workers
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.traces = TraceStore(capacity=trace_capacity)
        self.events = EventLog(capacity=trace_capacity)
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.wire(metrics=self.metrics, events=self.events)
        self.checkpoint_generations = checkpoint_generations
        self._executor: Optional[ParallelShardExecutor] = (
            ParallelShardExecutor(
                workers,
                retries=advance_retries,
                backoff=advance_backoff,
                deadline=advance_deadline,
                injector=fault_injector,
                metrics=self.metrics,
            )
            if workers > 1
            else None
        )
        self.router = ConsistentHashRouter(range(n_shards), replicas=replicas)
        self.routing_key = routing_key or (lambda sample: sample.name)
        self.realert_tolerance = realert_tolerance
        self.quality = quality
        self._shards: Dict[int, _Shard] = {
            shard_id: _Shard(
                shard_id,
                queue_capacity=queue_capacity,
                backpressure=BackpressurePolicy(backpressure),
                batch_size=batch_size,
                max_workers=max_workers_per_shard,
                retention=retention,
                metrics=self.metrics,
                fault_injector=fault_injector,
                quality=quality,
            )
            for shard_id in range(n_shards)
        }
        # Samples a data.reorder fault is holding back (delivered late,
        # behind the next sample of their series).
        self._data_held: Dict[str, Sample] = {}
        self._data_lock = threading.Lock()
        self._clock = 0.0
        self._reported_ledger: Dict[str, List[float]] = {}
        self._suppressed_realerts = 0
        self._reported = 0
        self.funnel = FunnelCounters()
        self._monitor_specs: List[dict] = []
        self._flushers: List[threading.Thread] = []
        self._stop_flushers = threading.Event()
        # Wall clock is for display only; recovery/aging decisions use
        # the monotonic reading, which an NTP step (or injected clock
        # skew) cannot move.
        self._last_checkpoint_at: Optional[float] = None
        self._last_checkpoint_mono: Optional[float] = None
        # Per-shard degradation reasons, keyed (shard_id, category) ->
        # reason string.  Categories ("advance", "flusher") are set when
        # a recovery path engages and cleared by the next clean pass, so
        # /healthz shows degraded -> ok transitions around each fault.
        self._degraded: Dict[int, Dict[str, str]] = {}
        self._degraded_lock = threading.Lock()
        self.metrics.set_gauge("service.shards", n_shards)
        self.metrics.set_gauge("service.workers", workers)

    # ------------------------------------------------------------------
    # Monitors
    # ------------------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    def _wall(self) -> float:
        """Wall-clock time, including any injected NTP-style skew.

        Display timestamps come from here; durations and ages never do
        (they use ``time.monotonic``), which is exactly the property the
        clock-skew chaos drill asserts.
        """
        now = time.time()
        if self.fault_injector is not None:
            now += self.fault_injector.clock_skew()
        return now

    def _set_degraded(self, shard_id: int, category: str, reason: str) -> None:
        with self._degraded_lock:
            previous = self._degraded.setdefault(shard_id, {}).get(category)
            self._degraded[shard_id][category] = reason
        if previous != reason:
            self.metrics.inc("service.degraded_transitions")
            self.events.record(
                "degraded", shard=shard_id, category=category, reason=reason
            )

    def _clear_degraded(self, shard_id: int, category: str) -> None:
        with self._degraded_lock:
            reasons = self._degraded.get(shard_id)
            if not reasons or category not in reasons:
                return
            del reasons[category]
            if not reasons:
                del self._degraded[shard_id]
        self.events.record("recovered", shard=shard_id, category=category)

    def degraded_reasons(self) -> Dict[int, Dict[str, str]]:
        """Per-shard degradation reasons (empty when fully healthy)."""
        with self._degraded_lock:
            return {shard: dict(reasons) for shard, reasons in self._degraded.items()}

    def faults_snapshot(self) -> Optional[dict]:
        """The fault injector's plan/execution view (``/faults``).

        ``None`` when no injector is configured — the production case.
        """
        if self.fault_injector is None:
            return None
        return self.fault_injector.snapshot()

    def quality_snapshot(self) -> dict:
        """Data-quality view across shards (the ``/quality`` payload).

        Aggregate admission counters, per-shard quarantine snapshots
        (worst offenders with reason codes and quality scores), and the
        series currently evicted from scanning for staleness.  See
        docs/RUNBOOK.md for the triage workflow.
        """
        shards = []
        totals: Dict[str, int] = {}
        stale: set = set()
        for shard in self._shards.values():
            admission = shard.worker.admission
            if admission is not None:
                snap = admission.snapshot()
                shards.append(snap)
                for key, value in snap["counters"].items():
                    totals[key] = totals.get(key, 0) + value
            stale.update(shard.scheduler.stale_series())
        return {
            "enabled": bool(shards),
            "counters": totals,
            # Current attribution (drops when a series is released),
            # unlike counters["quarantined"] which is cumulative.
            "quarantined_points": sum(
                snap["quarantine"]["total"] for snap in shards
            ),
            "stale_series": sorted(stale),
            "shards": shards,
        }

    def detectors_snapshot(self) -> dict:
        """Shadow-detector funnels across shards (the ``/detectors`` payload).

        Per-detector rows merged over every shard's scheduler (identity
        fields plus summed :class:`~repro.detectors.shadow.ShadowTally`
        buckets), id-sorted.  ``enabled`` is False when no monitor has
        challengers registered.  Shadow tallies are scheduler state, so
        this view survives parallel advances, checkpoints, and restores.
        """
        merged: Dict[str, dict] = {}
        for shard in self._shards.values():
            merge_snapshot_rows(merged, shard.scheduler.shadow_snapshot())
        rows = [merged[det_id] for det_id in sorted(merged)]
        return {"enabled": bool(rows), "detectors": rows}

    def unquarantine(self, name: str) -> int:
        """Release one series from quarantine on every shard.

        Clears its quarantine records and resets its quality score —
        the operator acknowledgement that the upstream data source was
        fixed (the points themselves were irreparable and stay gone).

        Returns:
            How many quarantined points were attributed to the series.
        """
        released = 0
        for shard in self._shards.values():
            admission = shard.worker.admission
            if admission is not None:
                released += admission.release_series(name)
        if released:
            self.metrics.inc("quality.released", released)
            self.events.record("series_unquarantined", series=name, points=released)
            _log.info("series unquarantined", series=name, points=released)
        return released

    def register_monitor(
        self,
        name: str,
        config: DetectionConfig,
        series_filter: Optional[Dict[str, str]] = None,
        first_run: Optional[float] = None,
        shadow: Optional[Sequence[DetectorSpec]] = None,
        **detector_kwargs,
    ) -> None:
        """Register a monitor on *every* shard.

        Each shard gets its own detector (and dedup state) scanning the
        shard-local slice of the series space.  The service defaults the
        pipeline's incremental scan cache on (pass ``incremental=False``
        to opt a monitor out): re-scans over quiet series then cost O(n)
        in new points instead of O(window).  Pipelines record funnel
        spans into the service's :attr:`traces` store (pass
        ``tracer=None`` to opt a monitor out of tracing).

        ``shadow`` registers challenger detectors (specs accepted by
        :func:`repro.detectors.build_detector` — e.g. ``["mad"]`` or
        ``[("e_divisive", {"n_permutations": 49})]``): each shard gets
        its own :class:`~repro.detectors.shadow.ShadowScorer` scoring
        every full scan alert-inertly; tallies surface on
        :meth:`detectors_snapshot` / ``/detectors`` and ride shard
        checkpoints like any scheduler state.
        """
        detector_kwargs.setdefault("incremental", True)
        detector_kwargs.setdefault("tracer", self.traces)
        # Gap-aware scanning rides the quality layer: low-coverage
        # windows are suppressed and stale series evicted (pass
        # ``quality_gate=None`` to opt a monitor out).
        detector_kwargs.setdefault(
            "quality_gate", QualityGate() if self.quality is not None else None
        )
        shadow_specs = list(shadow or [])
        shadow_ids: List[str] = []
        for shard in self._shards.values():
            shard_kwargs = dict(detector_kwargs)
            if shadow_specs:
                # Fresh challenger instances per shard: scorer state is
                # shard state (it rides that shard's pickles), so shards
                # must never share detector or tally objects.
                scorer = ShadowScorer(
                    [build_detector(spec) for spec in shadow_specs]
                )
                shadow_ids = scorer.detector_ids
                shard_kwargs["shadow"] = scorer
            shard.scheduler.register(
                name,
                config,
                series_filter=series_filter,
                first_run=first_run,
                metrics=self.metrics,
                **shard_kwargs,
            )
        self._monitor_specs.append(
            {
                "name": name,
                "config": config.name,
                "series_filter": dict(series_filter or {}),
                "shadow": shadow_ids,
            }
        )

    def monitors(self) -> List[str]:
        """Registered monitor names (identical on every shard)."""
        if not self._shards:
            return []
        return next(iter(self._shards.values())).scheduler.monitors()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self,
        name: str,
        timestamp: float,
        value: float,
        tags: Optional[Dict[str, str]] = None,
    ) -> bool:
        """Route one point to its shard; returns whether it was accepted."""
        return self.ingest_sample(Sample(name, timestamp, value, tags or {}))

    def ingest_sample(self, sample: Sample) -> bool:
        if self.fault_injector is not None and self.fault_injector.has_data_faults:
            return self._ingest_with_data_faults(sample)
        return self._offer_routed(sample)

    def _offer_routed(self, sample: Sample) -> bool:
        shard_id = self.router.shard_for(self.routing_key(sample))
        return self._shards[shard_id].worker.offer(sample)

    def _ingest_with_data_faults(self, sample: Sample) -> bool:
        """Apply a pending data-fault directive to one ingested sample.

        ``data.gap`` drops the sample before admission (a host restart
        losing it); ``data.corrupt`` replaces its value with NaN (a
        collector emitting garbage); ``data.reorder`` holds it back
        until the *next* sample of its series arrives, so it is
        delivered late and out of order (a clock-skewed host shipping a
        delayed batch).  All three exercise the admission layer exactly
        the way production dirt would.
        """
        directive = self.fault_injector.data_directive()
        if directive is FaultKind.DATA_GAP:
            return False
        if directive is FaultKind.DATA_CORRUPT:
            sample = dataclass_replace(sample, value=float("nan"))
        with self._data_lock:
            if directive is FaultKind.DATA_REORDER:
                held = self._data_held.pop(sample.name, None)
                self._data_held[sample.name] = sample
            else:
                held = self._data_held.pop(sample.name, None)
        if directive is FaultKind.DATA_REORDER:
            # A previously held sample (if any) is displaced and
            # delivered now — already out of order behind this one's
            # predecessors.
            if held is not None:
                self._offer_routed(held)
            return True
        accepted = self._offer_routed(sample)
        if held is not None:
            self._offer_routed(held)  # the late, out-of-order arrival
        return accepted

    def _release_data_held(self) -> None:
        """Deliver every reorder-held sample (advance/flush boundary)."""
        if self.fault_injector is None or not self.fault_injector.has_data_faults:
            return
        with self._data_lock:
            held = list(self._data_held.values())
            self._data_held.clear()
        for sample in held:
            self._offer_routed(sample)

    def ingest_many(self, samples: Sequence[Sample]) -> int:
        """Offer each sample; returns how many were accepted."""
        return sum(1 for sample in samples if self.ingest_sample(sample))

    def flush(self) -> int:
        """Drain every shard queue into its TSDB; returns samples written."""
        self._release_data_held()
        return sum(shard.worker.flush() for shard in self._shards.values())

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def advance_to(self, target: float) -> List[IncidentReport]:
        """Flush queues, run every due scan, and deliver new reports.

        With ``workers > 1``, shard advances run in parallel worker
        processes; the merge below happens strictly in ascending shard
        id — the same order the serial loop visits shards — so the two
        modes deliver identical report sequences for identical inputs
        (the merge barrier; see :mod:`repro.service.parallel`).

        Regressions whose (metric, change time) the service has already
        alerted on — in this life or a checkpointed previous one — are
        suppressed instead of re-delivered.

        Returns:
            The incident reports delivered to sinks by this call.
        """
        delivered: List[IncidentReport] = []
        self._release_data_held()
        with self.metrics.timer("service.advance_seconds"):
            if self._executor is not None and self.n_shards > 1:
                self._advance_parallel(target, delivered)
            else:
                for shard in self._shards.values():
                    started = time.perf_counter()
                    shard.worker.flush()
                    outcomes = shard.scheduler.advance_to(target)
                    shard.scans += len(outcomes)
                    self.metrics.observe(
                        "service.shard_advance_seconds",
                        time.perf_counter() - started,
                    )
                    self._deliver(shard, outcomes, delivered)
        self._clock = max(self._clock, target)
        return delivered

    def _advance_parallel(
        self, target: float, delivered: List[IncidentReport]
    ) -> None:
        """Fan shard advances out to worker processes and merge back.

        Every shard enters advancing mode before the fan-out (flushes
        into the soon-to-be-stale databases are held off; offers keep
        accumulating in the live queues) and leaves it in the merge
        loop, where the live worker adopts the advanced database and
        flush-counter deltas under its own lock.  If the pool fails, the
        snapshots' queued samples are restored and flushing resumes —
        the nothing-is-lost contract holds on both paths.
        """
        blobs = {
            shard_id: shard.begin_advance()
            for shard_id, shard in self._shards.items()
        }
        try:
            results = self._executor.map_shards(blobs, target)  # sorted by id
        except BaseException:
            for shard in self._shards.values():
                shard.abort_advance()
            raise
        self.metrics.inc("service.parallel_advances")
        for result in results:
            shard = self._shards[result.shard_id]
            if result.fallback is not None:
                self._set_degraded(
                    result.shard_id, "advance", "in_process_fallback"
                )
            elif result.retries:
                self._set_degraded(result.shard_id, "advance", "advance_retried")
            else:
                self._clear_degraded(result.shard_id, "advance")
            shard.complete_advance(result.state, self.metrics, tracer=self.traces)
            self.metrics.observe("service.shard_advance_seconds", result.elapsed)
            self.metrics.merge(result.metrics)
            # Worker-local trace stores ship their runs back explicitly;
            # the ascending-shard-id loop keeps the merged order
            # deterministic, matching the serial path.
            self.traces.record_many(result.traces)
            self._deliver(shard, result.outcomes, delivered)

    def _deliver(
        self,
        shard: _Shard,
        outcomes: Sequence[ScanOutcome],
        delivered: List[IncidentReport],
    ) -> None:
        """Fold one shard's scan outcomes into service-level state.

        Shared by the serial and parallel paths so ledger admission,
        funnel accumulation, and sink delivery are identical in both.
        """
        for outcome in outcomes:
            self.funnel.merge(outcome.result.funnel)
            for regression in outcome.result.reported:
                metric = regression.context.metric_id
                # Deterministic in (series, change time): the same
                # incident carries the same alert id across serial and
                # parallel execution and across restarts.
                alert = correlation_id(
                    metric, regression.change_time, prefix="alert"
                )
                with log_context(
                    series=metric, alert=alert, shard=shard.shard_id
                ):
                    if not self._ledger_admit(regression):
                        self._suppressed_realerts += 1
                        self.metrics.inc("service.reports.suppressed")
                        _log.info(
                            "re-alert suppressed",
                            monitor=outcome.monitor,
                            change_time=regression.change_time,
                        )
                        continue
                    report = build_report(regression)
                    self._deliver_to_sinks(report)
                    delivered.append(report)
                    self._reported += 1
                    self.metrics.inc("service.reports.delivered")
                    _log.info(
                        "incident delivered",
                        monitor=outcome.monitor,
                        detected_at=outcome.now,
                        magnitude=regression.magnitude,
                        sinks=len(self.sinks),
                    )
        self.metrics.set_gauge(
            f"service.shard{shard.shard_id}.series", len(shard.database)
        )

    def _deliver_to_sinks(self, report: IncidentReport) -> None:
        """Deliver one report to every sink, isolating per-sink faults.

        A raising sink (full disk, dead endpoint, bad plugin) must never
        abort the report loop mid-advance: the remaining sinks still get
        this report, every later report in the scan still flows, and the
        ledger/`service.reports.delivered` stay in sync with what was
        actually admitted.  Failures are counted per delivery attempt
        under ``service.sinks.errors`` and recorded on the event log, so
        a chronically broken sink is visible on ``/metrics`` and
        ``/faults`` instead of silently eating alerts.
        """
        for sink in self.sinks:
            try:
                sink.deliver(report)
            except Exception as error:
                self.metrics.inc("service.sinks.errors")
                self.events.record(
                    "sink_error",
                    sink=type(sink).__name__,
                    metric=report.metric_id,
                    error=str(error),
                )
                _log.exception(
                    "sink delivery failed",
                    sink=type(sink).__name__,
                    metric=report.metric_id,
                    error=str(error),
                )
            else:
                self.metrics.inc("service.sinks.delivered")

    def _ledger_admit(self, regression: Regression) -> bool:
        """Record-and-admit unless already reported within tolerance."""
        metric = regression.context.metric_id
        priors = self._reported_ledger.setdefault(metric, [])
        for prior in priors:
            if abs(prior - regression.change_time) <= self.realert_tolerance:
                return False
        priors.append(float(regression.change_time))
        return True

    # ------------------------------------------------------------------
    # Background flushing (live streaming mode)
    # ------------------------------------------------------------------

    def start(self, flush_interval: float = 0.05) -> None:
        """Start one background flusher thread per shard.

        Detection still runs through explicit :meth:`advance_to` calls
        (time is caller-owned); the flushers only keep bounded queues
        draining between them.
        """
        if self._flushers:
            raise RuntimeError("service already started")
        self._stop_flushers.clear()

        def drain(shard: _Shard) -> None:
            # A failed flush (TSDB error, injected flusher death) must
            # not kill the thread: the batch was already re-queued by
            # the worker, so we mark the shard degraded and retry on the
            # next tick.  The first clean flush clears the flag — the
            # degraded -> ok transition /healthz watchers key on.
            while not self._stop_flushers.wait(flush_interval):
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.maybe_raise("flusher", shard.shard_id)
                    shard.worker.flush()
                except Exception as error:
                    self.metrics.inc("service.flush_failures")
                    self._set_degraded(shard.shard_id, "flusher", "flush_failed")
                    _log.exception(
                        "background flush failed",
                        shard=shard.shard_id,
                        error=str(error),
                    )
                else:
                    self._clear_degraded(shard.shard_id, "flusher")

        for shard in self._shards.values():
            thread = threading.Thread(
                target=drain, args=(shard,), name=f"repro-shard-{shard.shard_id}",
                daemon=True,
            )
            thread.start()
            self._flushers.append(thread)

    def stop(self) -> None:
        """Stop background flushers and drain what is left."""
        self._stop_flushers.set()
        for thread in self._flushers:
            thread.join(timeout=5.0)
        self._flushers.clear()
        self.flush()

    def close(self) -> None:
        """Release resources: flushers, the worker pool, and the sinks.

        Sinks close last (and each in isolation) so buffered deliveries
        — a webhook queue draining, a held file handle — get their
        flush-on-close after the final advance's reports went out.
        """
        if self._flushers:
            self.stop()
        if self._executor is not None:
            self._executor.close()
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as error:
                self.metrics.inc("service.sinks.errors")
                _log.exception(
                    "sink close failed",
                    sink=type(sink).__name__,
                    error=str(error),
                )

    def __enter__(self) -> "StreamingDetectionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of service health."""
        shards = []
        totals = {"offered": 0, "accepted": 0, "flushed": 0,
                  "dropped_oldest": 0, "rejected": 0}
        scans = 0
        for shard in self._shards.values():
            counters = shard.worker.counters()
            for key in totals:
                totals[key] += counters[key]
            scans += shard.scans
            shards.append(
                ShardStats(
                    shard_id=shard.shard_id,
                    series=len(shard.database),
                    pending=shard.worker.pending,
                    counters=counters,
                    scans=shard.scans,
                )
            )
        return ServiceStats(
            clock=self._clock,
            n_shards=self.n_shards,
            offered=totals["offered"],
            accepted=totals["accepted"],
            flushed=totals["flushed"],
            dropped=totals["dropped_oldest"],
            rejected=totals["rejected"],
            scans=scans,
            reported=self._reported,
            suppressed_realerts=self._suppressed_realerts,
            shards=shards,
            metrics=self.metrics.snapshot(),
        )

    def render_metrics(self) -> str:
        """Text exposition of the self-metrics registry."""
        return self.metrics.render_text()

    def funnel_trace(self) -> FunnelTrace:
        """The live Table 3 view over the retained funnel run traces."""
        return FunnelTrace.from_store(self.traces)

    def healthz(self) -> dict:
        """Liveness/readiness snapshot (the ``/healthz`` payload).

        A shard is *saturated* when its queue has reached the
        backpressure threshold (pending >= capacity): offers are now
        blocking, rejecting, or evicting depending on policy.  A shard
        is *degraded* while a recovery path is engaged on its behalf
        (advance retries / in-process fallback, failed background
        flushes) — the per-shard ``degraded`` map names the reasons, and
        they clear on the next clean pass.  Either condition degrades
        the whole service: the endpoint answers 503 so probes and load
        balancers shed traffic before samples are lost.

        ``checkpoint.age_seconds`` is measured on the *monotonic* clock
        since the last :meth:`checkpoint` (or restore) in this process
        (``None`` when no checkpoint was ever taken) — how much progress
        a crash right now would replay.  An NTP step moves ``last_at``
        (display, wall clock) but can never make the age lie.
        """
        shards = []
        saturated_shards = 0
        degraded_reasons = self.degraded_reasons()
        for shard in self._shards.values():
            worker = shard.worker
            pending = worker.pending
            saturated = pending >= worker.capacity
            saturated_shards += bool(saturated)
            shards.append(
                {
                    "shard": shard.shard_id,
                    "pending": pending,
                    "capacity": worker.capacity,
                    "policy": worker.policy.value,
                    "saturated": saturated,
                    "scans": shard.scans,
                    "degraded": degraded_reasons.get(shard.shard_id, {}),
                }
            )
        checkpoint_age = (
            time.monotonic() - self._last_checkpoint_mono
            if self._last_checkpoint_mono is not None
            else None
        )
        healthy = saturated_shards == 0 and not degraded_reasons
        return {
            "status": "ok" if healthy else "degraded",
            "clock": self._clock,
            "shards": shards,
            "saturated_shards": saturated_shards,
            "degraded_shards": len(degraded_reasons),
            "flushers_alive": sum(t.is_alive() for t in self._flushers),
            "workers": self.workers,
            "checkpoint": {
                "last_at": self._last_checkpoint_at,
                "age_seconds": checkpoint_age,
            },
        }

    def status_snapshot(self) -> dict:
        """Operator funnel snapshot (the ``/status`` payload).

        ``funnel`` is the cumulative :class:`FunnelCounters` view (every
        scan since the service — or its checkpoint lineage — started);
        ``funnel_trace`` is the windowed live view over the trace ring
        buffer, with per-stage drop reasons and timings.  All values are
        JSON-serializable.
        """
        stats = self.stats()
        detected = self.funnel.counts.get("change_points", 0)
        reduction = {
            stage: (detected / alive) if alive else None
            for stage, alive in self.funnel.counts.items()
        }
        return {
            "clock": self._clock,
            "n_shards": self.n_shards,
            "workers": self.workers,
            "monitors": self.monitors(),
            "scans": stats.scans,
            "reported": self._reported,
            "suppressed_realerts": self._suppressed_realerts,
            "ingest": {
                "offered": stats.offered,
                "accepted": stats.accepted,
                "flushed": stats.flushed,
                "dropped": stats.dropped,
                "rejected": stats.rejected,
            },
            "funnel": dict(self.funnel.counts),
            "funnel_reduction": reduction,
            "funnel_trace": self.funnel_trace().to_dict(),
            "traces": {
                "retained": len(self.traces),
                "recorded": self.traces.recorded,
                "capacity": self.traces.capacity,
            },
        }

    def shard_database(self, shard_id: int) -> TimeSeriesDatabase:
        """Direct access to one shard's TSDB (tests, demos)."""
        return self._shards[shard_id].database

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, directory: str) -> str:
        """Write a full checkpoint; returns the manifest path.

        Captures per-shard TSDBs, un-flushed queue contents, scheduler
        clocks and detector/dedup state, the reported-ledger, the
        aggregate funnel, and a metrics snapshot.
        """
        meta = {
            "clock": self._clock,
            "n_shards": self.n_shards,
            "replicas": self.router.replicas,
            "realert_tolerance": self.realert_tolerance,
            "reported": self._reported,
            "suppressed_realerts": self._suppressed_realerts,
            "reported_ledger": {k: list(v) for k, v in self._reported_ledger.items()},
            "funnel": dict(self.funnel.counts),
            "monitors": list(self._monitor_specs),
            "metrics": self.metrics.snapshot(),
        }
        manager = CheckpointManager(
            directory,
            keep_generations=self.checkpoint_generations,
            fault_injector=self.fault_injector,
        )
        path = manager.save(
            meta, {shard.shard_id: shard.state() for shard in self._shards.values()}
        )
        self._last_checkpoint_at = self._wall()
        self._last_checkpoint_mono = time.monotonic()
        self.events.record("checkpoint_written", clock=self._clock)
        _log.info(
            "checkpoint written",
            path=path,
            clock=self._clock,
            shards=self.n_shards,
            reported=self._reported,
        )
        return path

    @classmethod
    def restore(
        cls,
        directory: str,
        sinks: Sequence[IncidentSink] = (),
        **service_kwargs,
    ) -> "StreamingDetectionService":
        """Rebuild a service from a checkpoint directory.

        The restored service resumes exactly where the checkpointed one
        stopped: queued-but-unflushed samples are still queued, and
        regressions already reported are not re-alerted.  Derived
        incremental-scan caches are dropped — a stale anchor from the
        previous life must never suppress a re-scan over replayed
        history — so the first scan after a restore pays full price and
        re-anchors from the restored data.

        When the newest checkpoint generation is corrupt (bad checksum,
        truncated blob, damaged manifest), the load falls back to the
        next intact generation: ``checkpoint.fallbacks`` counts the
        skipped generations and a ``checkpoint_fallback`` event records
        them, so silent restores from stale state cannot happen.

        Raises:
            CheckpointError: When the checkpoint is missing entirely or
                every retained generation is corrupt.
        """
        manager = CheckpointManager(directory)
        meta, shard_states = manager.load()
        service = cls(
            n_shards=meta["n_shards"],
            sinks=sinks,
            replicas=meta.get("replicas", 64),
            realert_tolerance=meta.get("realert_tolerance", 3600.0),
            **service_kwargs,
        )
        for shard_key, state in shard_states.items():
            service._shards[int(shard_key)].load_state(
                state,
                service.metrics,
                drop_derived=True,
                tracer=service.traces,
                fault_injector=service.fault_injector,
            )
        service._clock = meta.get("clock", 0.0)
        service._reported = meta.get("reported", 0)
        service._suppressed_realerts = meta.get("suppressed_realerts", 0)
        service._reported_ledger = {
            k: list(v) for k, v in meta.get("reported_ledger", {}).items()
        }
        service.funnel = FunnelCounters()
        for stage, count in (meta.get("funnel") or {}).items():
            service.funnel.counts[stage] = count
        service._monitor_specs = list(meta.get("monitors", []))
        service.metrics.restore(meta.get("metrics", {}))
        service.metrics.set_gauge("service.shards", service.n_shards)
        service.metrics.inc("service.restores")
        load_info = manager.last_load() or {}
        fallbacks = int(load_info.get("fallbacks", 0) or 0)
        if fallbacks:
            service.metrics.inc("checkpoint.fallbacks", fallbacks)
            service.events.record(
                "checkpoint_fallback",
                generation=load_info.get("generation"),
                skipped=load_info.get("skipped"),
            )
            _log.warning(
                "restore fell back past corrupt checkpoint generations",
                directory=directory,
                generation=load_info.get("generation"),
                skipped=fallbacks,
            )
        # The restored in-memory state is exactly as fresh as the load;
        # the trace ring buffer starts empty (process-local state).
        service._last_checkpoint_at = service._wall()
        service._last_checkpoint_mono = time.monotonic()
        _log.info(
            "service restored",
            directory=directory,
            clock=service._clock,
            shards=service.n_shards,
            reported=service._reported,
        )
        return service
