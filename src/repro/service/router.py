"""Consistent-hash shard routing.

Maps series keys to shards the way the paper's serverless deployment
spreads ~800k series across workers: a hash ring with virtual nodes, so
(a) routing is deterministic across processes and restarts (the digest
is :func:`hashlib.blake2b`, immune to ``PYTHONHASHSEED``), (b) load
spreads evenly, and (c) adding or removing a shard only remaps the keys
that touched it — the property every later resharding PR relies on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Hashable, Iterable, List, Sequence

__all__ = ["ConsistentHashRouter"]


def _hash64(key: str) -> int:
    """A stable 64-bit digest of ``key`` (process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ConsistentHashRouter:
    """A hash ring mapping series keys to shard ids.

    Args:
        shards: Initial shard ids (any hashable, typically ints).
        replicas: Virtual nodes per shard; more replicas smooth the load
            distribution at the cost of a larger ring.

    Example::

        router = ConsistentHashRouter(range(4))
        shard = router.shard_for("frontfaas.render_feed.gcpu")
    """

    def __init__(self, shards: Iterable[Hashable] = (), replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: List[Hashable] = []
        self._shards: List[Hashable] = []
        for shard in shards:
            self.add_shard(shard)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: Hashable) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> List[Hashable]:
        """Registered shard ids, in insertion order."""
        return list(self._shards)

    def _ring_points(self, shard: Hashable) -> List[int]:
        return [_hash64(f"{shard!r}#{replica}") for replica in range(self.replicas)]

    def add_shard(self, shard: Hashable) -> None:
        """Add a shard to the ring.

        Raises:
            ValueError: When the shard is already registered.
        """
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already registered")
        self._shards.append(shard)
        for point in self._ring_points(shard):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def remove_shard(self, shard: Hashable) -> None:
        """Remove a shard; its keys redistribute to ring successors.

        Raises:
            ValueError: When the shard is not registered.
        """
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} not registered")
        self._shards.remove(shard)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def shard_for(self, key: str) -> Hashable:
        """The shard owning ``key``.

        Raises:
            RuntimeError: When the ring is empty.
        """
        if not self._points:
            raise RuntimeError("router has no shards")
        index = bisect.bisect(self._points, _hash64(key))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[index]

    def distribution(self, keys: Sequence[str]) -> Dict[Hashable, int]:
        """Per-shard key counts for ``keys`` (balance diagnostics)."""
        counts: Dict[Hashable, int] = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
